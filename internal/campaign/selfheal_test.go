package campaign

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"deepfusion/internal/h5lite"
)

// shardFixture writes a small valid shard to path (no faults active)
// and returns its on-disk bytes.
func shardFixture(t *testing.T, path string) []byte {
	t.Helper()
	f := h5lite.New()
	g := f.Root().Group("fixture")
	g.SetFloats("scores", []float64{1, 2, 3, 4})
	g.SetStrings("ids", []string{"a", "b", "c", "d"})
	if err := WriteShardFile(path, f); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDiskFaultWriteKinds pins each write-side fault's contract
// against the commit primitive: visible failures leave no file,
// silent corruptions report success and land damaged bytes that
// read-side CRC verification then catches.
func TestDiskFaultWriteKinds(t *testing.T) {
	dir := t.TempDir()
	good := shardFixture(t, filepath.Join(dir, "good.h5l"))

	t.Run("enospc", func(t *testing.T) {
		path := filepath.Join(dir, "enospc.h5l")
		defer SetDiskFaults(NewDiskFaults(nil, DiskFault{Op: "write", Kind: FaultENOSPC}))()
		if err := commitBytes(path, good); !errors.Is(err, ErrInjectedENOSPC) {
			t.Fatalf("commit under enospc returned %v, want ErrInjectedENOSPC", err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("enospc left a file behind (stat err %v)", err)
		}
	})
	t.Run("rename-fail", func(t *testing.T) {
		path := filepath.Join(dir, "rename.h5l")
		defer SetDiskFaults(NewDiskFaults(nil, DiskFault{Op: "rename", Kind: FaultRenameFail}))()
		if err := commitBytes(path, good); !errors.Is(err, ErrInjectedRename) {
			t.Fatalf("commit under rename-fail returned %v, want ErrInjectedRename", err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("failed rename left the destination behind (stat err %v)", err)
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if bytes.Contains([]byte(e.Name()), []byte("rename.h5l.tmp")) {
				t.Fatalf("temp file %s not cleaned up after rename fault", e.Name())
			}
		}
	})
	t.Run("torn-write-reports-success", func(t *testing.T) {
		path := filepath.Join(dir, "torn.h5l")
		defer SetDiskFaults(NewDiskFaults(nil, DiskFault{Op: "write", Kind: FaultTornWrite, Byte: 10}))()
		if err := commitBytes(path, good); err != nil {
			t.Fatalf("torn write must look successful to the writer, got %v", err)
		}
		onDisk, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(onDisk) != 10 || !bytes.Equal(onDisk, good[:10]) {
			t.Fatalf("torn write landed %d bytes, want the first 10", len(onDisk))
		}
		if _, err := ReadShardFile(path); !errors.Is(err, h5lite.ErrCorrupt) {
			t.Fatalf("reading the torn shard returned %v, want ErrCorrupt", err)
		}
	})
	t.Run("bit-flip-reports-success", func(t *testing.T) {
		path := filepath.Join(dir, "flip.h5l")
		defer SetDiskFaults(NewDiskFaults(nil, DiskFault{Op: "write", Kind: FaultBitFlip, Byte: len(good) / 2}))()
		if err := commitBytes(path, good); err != nil {
			t.Fatalf("bit-flip write must look successful to the writer, got %v", err)
		}
		onDisk, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(onDisk, good) {
			t.Fatal("bit-flip fault landed pristine bytes")
		}
		if _, err := ReadShardFile(path); !errors.Is(err, h5lite.ErrCorrupt) {
			t.Fatalf("reading the flipped shard returned %v, want ErrCorrupt", err)
		}
	})
}

// TestDiskFaultReadKinds pins the read-side faults: the observed
// bytes are damaged, the file is untouched, and the CRC layer
// converts the damage into ErrCorrupt instead of wrong values.
func TestDiskFaultReadKinds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.h5l")
	good := shardFixture(t, path)

	defer SetDiskFaults(NewDiskFaults(nil,
		DiskFault{Op: "read", Kind: FaultShortRead, Byte: 7},
		DiskFault{Op: "read", Kind: FaultBitFlip, Byte: 3},
	))()
	for _, kind := range []DiskFaultKind{FaultShortRead, FaultBitFlip} {
		if _, err := ReadShardFile(path); !errors.Is(err, h5lite.ErrCorrupt) {
			t.Fatalf("%s read returned %v, want ErrCorrupt", kind, err)
		}
	}
	// Transient fault: the plan is drained, the file is pristine, the
	// next read succeeds.
	if onDisk, err := os.ReadFile(path); err != nil || !bytes.Equal(onDisk, good) {
		t.Fatalf("read faults modified the file on disk (err %v)", err)
	}
	if _, err := ReadShardFile(path); err != nil {
		t.Fatalf("read after plan drained failed: %v", err)
	}
}

// TestDiskFaultPlanMatching pins the plan semantics: op + path
// substring + not-before gating, first-match exactly-once
// consumption, and the injection log.
func TestDiskFaultPlanMatching(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(5000, 0)
	fc := NewFakeClock(t0)
	faults := NewDiskFaults(fc,
		DiskFault{Op: "write", Kind: FaultENOSPC, Path: "target.h5l"},
		DiskFault{Op: "write", Kind: FaultENOSPC, Path: "later.h5l", NotBefore: t0.Add(time.Minute)},
	)
	defer SetDiskFaults(faults)()

	// Wrong path: passes through untouched.
	if err := commitBytes(filepath.Join(dir, "other.h5l"), []byte("x")); err != nil {
		t.Fatalf("non-matching path hit a fault: %v", err)
	}
	// Gated fault: not yet eligible on the fake clock.
	if err := commitBytes(filepath.Join(dir, "later.h5l"), []byte("x")); err != nil {
		t.Fatalf("not-before fault fired early: %v", err)
	}
	// Matching path: fires exactly once.
	if err := commitBytes(filepath.Join(dir, "target.h5l"), []byte("x")); !errors.Is(err, ErrInjectedENOSPC) {
		t.Fatalf("matching path got %v, want injected ENOSPC", err)
	}
	if err := commitBytes(filepath.Join(dir, "target.h5l"), []byte("x")); err != nil {
		t.Fatalf("consumed fault fired twice: %v", err)
	}
	// Advance the clock: the gated fault becomes eligible.
	fc.Advance(2 * time.Minute)
	if err := commitBytes(filepath.Join(dir, "later.h5l"), []byte("x")); !errors.Is(err, ErrInjectedENOSPC) {
		t.Fatalf("gated fault after advance got %v, want injected ENOSPC", err)
	}

	if n := faults.Remaining(); n != 0 {
		t.Fatalf("%d faults never fired", n)
	}
	log := faults.Injected()
	if len(log) != 2 {
		t.Fatalf("injection log has %d entries, want 2", len(log))
	}
	if !log[0].At.Equal(t0) || !log[1].At.Equal(t0.Add(2*time.Minute)) {
		t.Fatalf("injection timestamps %v / %v not stamped from the plan clock", log[0].At, log[1].At)
	}
	if log[1].Target != filepath.Join(dir, "later.h5l") {
		t.Fatalf("injection log target %q, want the faulted path", log[1].Target)
	}
}

// TestTornShardSelfHeals is the single-process self-healing
// guarantee: a shard silently torn on its way to disk (the write
// reported success, the unit acked) is caught by finalize-time CRC
// verification, quarantined, and its unit re-executed at a fresh
// epoch — and the campaign still completes with selections
// byte-identical to an unfaulted run.
func TestTornShardSelfHeals(t *testing.T) {
	cfg := tinyConfig()

	dirA := filepath.Join(t.TempDir(), "reference")
	ca, err := New(dirA, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantSel := selectionBytes(t, dirA)

	dirB := filepath.Join(t.TempDir(), "faulted")
	faults := NewDiskFaults(nil, DiskFault{
		Op:   "write",
		Kind: FaultTornWrite,
		Path: "protease1_c000_s00.h5l",
		Byte: 40,
	})
	defer SetDiskFaults(faults)()
	cb, err := New(dirB, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Run(context.Background()); err != nil {
		t.Fatalf("self-healing run failed: %v", err)
	}

	if n := faults.Remaining(); n != 0 {
		t.Fatalf("%d faults never fired", n)
	}
	if got := selectionBytes(t, dirB); !bytes.Equal(got, wantSel) {
		t.Fatal("selections after self-heal differ from the unfaulted run")
	}
	man, err := loadManifest(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if man.Corruptions != 1 || man.Repairs != 1 {
		t.Fatalf("manifest counters corruptions=%d repairs=%d, want 1/1", man.Corruptions, man.Repairs)
	}
	var healed *UnitRecord
	for i := range man.Units {
		if man.Units[i].ID == "protease1_c000" {
			healed = &man.Units[i]
		}
	}
	if healed == nil || healed.State != UnitDone || healed.Repairs != 1 || healed.Epoch == 0 {
		t.Fatalf("healed unit record %+v, want done at a fresh epoch with repairs=1", healed)
	}
	// The damaged shard is preserved in quarantine, not deleted.
	if _, err := os.Stat(filepath.Join(QuarantineDir(dirB), "protease1_c000_s00.h5l")); err != nil {
		t.Fatalf("torn shard not in quarantine: %v", err)
	}
	st, err := ReadStatus(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if st.Corruptions != 1 || st.Repairs != 1 {
		t.Fatalf("status counters corruptions=%d repairs=%d, want 1/1", st.Corruptions, st.Repairs)
	}
}

// TestRepairBudgetExhaustionFailsLoudly pins the bound on the healing
// loop: a unit whose shards keep landing corrupt past
// Config.MaxRepairs parks failed and Run surfaces the quarantine
// error instead of looping or silently folding damage.
func TestRepairBudgetExhaustionFailsLoudly(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxRepairs = 1

	dir := filepath.Join(t.TempDir(), "exhausted")
	// Epoch 0 writes protease1_c000_s00.h5l; the repair re-queue
	// re-executes at epoch 1 under the epoch-qualified name. Corrupt
	// both: the second corruption exhausts the budget of 1.
	faults := NewDiskFaults(nil,
		DiskFault{Op: "write", Kind: FaultTornWrite, Path: "protease1_c000_s00.h5l", Byte: 12},
		DiskFault{Op: "write", Kind: FaultBitFlip, Path: "protease1_c000_e001_s00.h5l", Byte: 25},
	)
	defer SetDiskFaults(faults)()
	c, err := New(dir, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background())
	if !errors.Is(err, ErrShardsQuarantined) {
		t.Fatalf("run with exhausted repair budget returned %v, want ErrShardsQuarantined", err)
	}
	if n := faults.Remaining(); n != 0 {
		t.Fatalf("%d faults never fired", n)
	}
	man, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Corruptions != 2 || man.Repairs != 1 {
		t.Fatalf("counters corruptions=%d repairs=%d, want 2 corruptions and only 1 granted repair", man.Corruptions, man.Repairs)
	}
	for _, u := range man.Units {
		if u.ID == "protease1_c000" && u.State != UnitFailed {
			t.Fatalf("budget-exhausted unit is %q, want failed", u.State)
		}
	}
	if man.Finalized {
		t.Fatal("campaign with quarantined shards must not be finalized")
	}
	// Both damaged generations are preserved for post-mortem.
	ents, err := os.ReadDir(QuarantineDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("quarantine holds %d files, want both damaged shards", len(ents))
	}
}
