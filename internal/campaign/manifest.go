package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// UnitState is the lifecycle of one work unit in the manifest.
type UnitState string

// Unit states. InFlight units were started but never recorded done —
// a crash or kill caught them mid-chunk — and are re-run on resume.
// Failed units exhausted their per-chunk retry budget and are retried
// (with advanced failure-injection seeds) on the next Run.
const (
	UnitPending  UnitState = "pending"
	UnitInFlight UnitState = "inflight"
	UnitDone     UnitState = "done"
	UnitFailed   UnitState = "failed"
)

// UnitRecord is the durable state of one work unit: one compound
// chunk docked and scored against one target, with its output shard
// files. The compound range [Lo, Hi) indexes the campaign deck, which
// is regenerated deterministically from the manifest config.
type UnitRecord struct {
	ID       string    `json:"id"`
	Target   string    `json:"target"`
	Chunk    int       `json:"chunk"`
	Lo       int       `json:"lo"`
	Hi       int       `json:"hi"`
	State    UnitState `json:"state"`
	Attempts int       `json:"attempts"` // Fusion job attempts consumed so far
	Poses    int       `json:"poses"`    // docked poses scored (done units)
	Skipped  int       `json:"skipped"`  // compounds that failed prep/docking
	Shards   []string  `json:"shards"`   // shard filenames relative to the campaign dir
	// Epoch is the unit's claim generation in a distributed run. Each
	// lease-expiry reassignment bumps it; claim files and result acks
	// are epoch-named, so artifacts from a fenced (zombie) worker can
	// never be confused with the current owner's. Single-process runs
	// leave it at 0.
	Epoch int `json:"epoch,omitempty"`
	// Worker is the worker holding (in-flight) or last holding (done/
	// failed) the unit's lease in a distributed run.
	Worker string `json:"worker,omitempty"`
	// Repairs counts corruption re-queues this unit has consumed from
	// its lifetime repair budget (Config.MaxRepairs). A unit whose
	// shards keep failing verification past the budget parks as
	// failed instead of looping forever.
	Repairs int `json:"repairs,omitempty"`
}

// WorkerRecord is the manifest's durable liveness and throughput
// record for one distributed worker, folded from its claim heartbeats
// and result acks by the coordinator.
type WorkerRecord struct {
	ID        string    `json:"id"`
	FirstSeen time.Time `json:"first_seen"`
	LastBeat  time.Time `json:"last_heartbeat"`
	Leases    []string  `json:"leases,omitempty"` // unit IDs currently held
	UnitsDone int       `json:"units_done"`
	PosesDone int       `json:"poses_done"`
}

// SelectionRecord is one selected compound in the finalized campaign:
// the per-compound aggregated scores, the combined cost-function
// value, and the two-stage experimental confirmation readout.
type SelectionRecord struct {
	CompoundID string  `json:"compound_id"`
	Fusion     float64 `json:"fusion_pk"`
	Vina       float64 `json:"vina_kcal"`
	MMGBSA     float64 `json:"mmgbsa_kcal"`
	AMPL       float64 `json:"ampl_kcal"`
	Combined   float64 `json:"combined"`
	NumPoses   int     `json:"num_poses"`
	Inhibition float64 `json:"inhibition_pct"`
	PrimaryHit bool    `json:"primary_hit"`
	Confirmed  bool    `json:"confirmed"`
}

// Manifest is the durable campaign state: the configuration the deck
// and unit grid are deterministically derived from, the per-unit
// progress, and (once finalized) the per-target selections. It lives
// as manifest.json in the campaign directory next to the shard files,
// and is rewritten atomically after every state change so a killed
// process leaves a consistent view: completed chunks are skipped on
// resume, in-flight chunks re-run.
type Manifest struct {
	Version    int                          `json:"version"`
	Name       string                       `json:"name"`
	Config     Config                       `json:"config"`
	DeckSize   int                          `json:"deck_size"`
	Units      []UnitRecord                 `json:"units"`
	Finalized  bool                         `json:"finalized"`
	Selections map[string][]SelectionRecord `json:"selections,omitempty"`
	// Workers and Reassignments are maintained by the distributed
	// coordinator: per-worker liveness/throughput, and the number of
	// lease-expiry reassignments over the campaign's lifetime.
	Workers       map[string]*WorkerRecord `json:"workers,omitempty"`
	Reassignments int                      `json:"reassignments,omitempty"`
	// Corruptions counts shard files that failed integrity
	// verification over the campaign's lifetime (each was quarantined,
	// never folded); Repairs counts the corruption re-queues granted
	// in response. Repairs < Corruptions means some unit exhausted its
	// budget and parked as failed.
	Corruptions int `json:"corruptions,omitempty"`
	Repairs     int `json:"repairs,omitempty"`
}

const (
	manifestVersion = 1
	manifestName    = "manifest.json"
	shardDirName    = "shards"
)

// manifestPath returns the manifest location inside a campaign dir.
func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// ManifestPath returns the manifest.json location inside a campaign
// directory — exported for the HTTP dispatch layer, which serves the
// raw manifest bytes to remote workers and mirrors them into a local
// scratch directory.
func ManifestPath(dir string) string { return manifestPath(dir) }

// ShardDir returns the shard directory inside a campaign directory —
// where the HTTP dispatch server lands shard bytes uploaded by remote
// workers.
func ShardDir(dir string) string { return filepath.Join(dir, shardDirName) }

// saveManifest writes the manifest atomically: serialize to a temp
// file in the same directory, fsync, rename over the live copy. A
// kill at any instant leaves either the old or the new manifest,
// never a torn one.
func saveManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal manifest: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, manifestName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), manifestPath(dir))
}

// loadManifest reads and validates a campaign manifest.
func loadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("campaign: no manifest in %s: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("campaign: corrupt manifest in %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("campaign: manifest version %d, want %d", m.Version, manifestVersion)
	}
	// Manifests written before the Scorer redesign recorded no scorer
	// set; they were all single-Coherent campaigns.
	if len(m.Config.Scorers) == 0 {
		m.Config.Scorers = []string{"coherent"}
	}
	// Manifests written before the precision knob recorded no engine
	// precision; they were all scored on the f64 reference path.
	m.Config.Job.Precision = m.Config.Job.Precision.Normalize()
	if err := m.Config.Job.Precision.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: manifest in %s: %w", dir, err)
	}
	return &m, nil
}

// TargetStatus summarizes one target's unit progress. The JSON tags
// are the stable machine-readable shape `campaign status -json` and
// ops tooling consume.
type TargetStatus struct {
	Target string `json:"target"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Poses  int    `json:"poses"`
}

// WorkerStatus summarizes one distributed worker's liveness from the
// manifest: when it last proved itself alive, what it holds, and its
// completed-unit throughput.
type WorkerStatus struct {
	ID        string    `json:"id"`
	FirstSeen time.Time `json:"first_seen"`
	LastBeat  time.Time `json:"last_beat"`
	Leases    []string  `json:"leases,omitempty"`
	UnitsDone int       `json:"units_done"`
	PosesDone int       `json:"poses_done"`
	// UnitsPerSec is UnitsDone over the worker's observed lifetime
	// (first claim to last heartbeat) — derived purely from the
	// manifest, so `campaign status` needs no live connection.
	UnitsPerSec float64 `json:"units_per_sec"`
	// DispatchRetries and DispatchBackoffs count the transient
	// dispatch-call retries and backoff sleeps this worker has burned
	// reaching the coordinator. Only the HTTP backend populates them
	// (the coordinator's dispatch server folds them into its /status
	// response from the clients' request headers); a shared-filesystem
	// campaign leaves them zero.
	DispatchRetries  int `json:"dispatch_retries,omitempty"`
	DispatchBackoffs int `json:"dispatch_backoffs,omitempty"`
}

// Status is a point-in-time campaign summary derived from the
// manifest.
type Status struct {
	Name string `json:"name"`
	Dir  string `json:"dir"`
	// Backend names the dispatch backend the status was read through:
	// "fs" for a manifest read off the (shared) filesystem, "http"
	// when served by a coordinator's dispatch server. Coordinator is
	// the serving address in the http case.
	Backend       string         `json:"backend,omitempty"`
	Coordinator   string         `json:"coordinator,omitempty"`
	DeckSize      int            `json:"deck_size"`
	Scorers       []string       `json:"scorers"`   // the manifest's recorded scorer set, primary first
	Precision     string         `json:"precision"` // the manifest's recorded engine precision ("f64"/"f32")
	Done          int            `json:"done"`
	InFlight      int            `json:"in_flight"`
	Pending       int            `json:"pending"`
	Failed        int            `json:"failed"`
	Total         int            `json:"total"`
	Poses         int            `json:"poses"`
	Finalized     bool           `json:"finalized"`
	Reassignments int            `json:"reassignments"` // lease-expiry reassignments (distributed runs)
	Corruptions   int            `json:"corruptions"`   // shards that failed verification (quarantined, never folded)
	Repairs       int            `json:"repairs"`       // corruption re-queues granted under the repair budget
	PerTarget     []TargetStatus `json:"per_target"`
	Workers       []WorkerStatus `json:"workers,omitempty"` // distributed workers, sorted by ID
}

// status folds the manifest's unit grid into per-state and per-target
// counts.
func (m *Manifest) status(dir string) Status {
	s := Status{
		Name:          m.Name,
		Dir:           dir,
		Backend:       "fs",
		DeckSize:      m.DeckSize,
		Scorers:       m.Config.Scorers,
		Precision:     string(m.Config.Job.Precision.Normalize()),
		Total:         len(m.Units),
		Finalized:     m.Finalized,
		Reassignments: m.Reassignments,
		Corruptions:   m.Corruptions,
		Repairs:       m.Repairs,
	}
	for _, w := range m.Workers {
		ws := WorkerStatus{
			ID:        w.ID,
			FirstSeen: w.FirstSeen,
			LastBeat:  w.LastBeat,
			Leases:    w.Leases,
			UnitsDone: w.UnitsDone,
			PosesDone: w.PosesDone,
		}
		if life := w.LastBeat.Sub(w.FirstSeen); life > 0 && w.UnitsDone > 0 {
			ws.UnitsPerSec = float64(w.UnitsDone) / life.Seconds()
		}
		s.Workers = append(s.Workers, ws)
	}
	sort.Slice(s.Workers, func(a, b int) bool { return s.Workers[a].ID < s.Workers[b].ID })
	byTarget := map[string]*TargetStatus{}
	var order []string
	for _, u := range m.Units {
		ts, ok := byTarget[u.Target]
		if !ok {
			ts = &TargetStatus{Target: u.Target}
			byTarget[u.Target] = ts
			order = append(order, u.Target)
		}
		ts.Total++
		switch u.State {
		case UnitDone:
			s.Done++
			s.Poses += u.Poses
			ts.Done++
			ts.Poses += u.Poses
		case UnitInFlight:
			s.InFlight++
		case UnitFailed:
			s.Failed++
		default:
			s.Pending++
		}
	}
	sort.Strings(order)
	for _, t := range order {
		s.PerTarget = append(s.PerTarget, *byTarget[t])
	}
	return s
}

// ReadConfig loads only the stored configuration of a campaign
// directory — enough for a resuming process to rebuild the scoring
// model before paying for Load's deck regeneration.
func ReadConfig(dir string) (Config, error) {
	m, err := loadManifest(dir)
	if err != nil {
		return Config{}, err
	}
	return m.Config, nil
}

// ReadSelections loads the finalized per-target selections of a
// campaign directory.
func ReadSelections(dir string) (map[string][]SelectionRecord, error) {
	m, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if !m.Finalized {
		return nil, fmt.Errorf("campaign: %s is not finalized", dir)
	}
	return m.Selections, nil
}

// ReadStatus loads the manifest of a campaign directory and returns
// its progress summary without constructing models or a deck — the
// cheap path behind `campaign status`.
func ReadStatus(dir string) (Status, error) {
	m, err := loadManifest(dir)
	if err != nil {
		return Status{}, err
	}
	return m.status(dir), nil
}
