package campaign

import (
	"fmt"
	"os"
	"path/filepath"

	"deepfusion/internal/assay"
	"deepfusion/internal/chem"
	"deepfusion/internal/h5lite"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

// TargetResult is one target's finalized outcome: the ranked purchase
// list and its two-stage experimental confirmation.
type TargetResult struct {
	Target      string
	Screened    int // compounds with at least one scored pose
	Selections  []SelectionRecord
	PrimaryHits int
	Confirmed   int
}

// Result is the finalized campaign: per-target selections in
// Config.Targets order plus campaign-level hit accounting.
type Result struct {
	PerTarget []TargetResult
	Tested    int
	Hits      int // primary assay at/above the threshold
	Confirmed int // confirmed by the orthogonal secondary assay
}

// HitRate returns primary hits over tested compounds.
func (r *Result) HitRate() float64 {
	if r.Tested == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Tested)
}

// Finalize runs the selection stage over the completed unit shards:
// per target, read the unit shard files back in chunk order, fold
// pose predictions to per-compound scores, attach the AMPL surrogate,
// rank with the cost function, and push the purchase list through the
// two-stage assay confirmation. The selections are persisted into the
// manifest.
//
// Finalize ALWAYS reads from the shard files — never from in-memory
// predictions — so an uninterrupted run and a killed-and-resumed run
// take the identical code path over identical bytes and produce
// byte-identical selections.
func (c *Campaign) Finalize() (*Result, error) {
	c.mu.Lock()
	// Defense in depth: even though the distributed fold path verified
	// each shard before marking its unit done, re-verify here — the
	// last gate before bytes flow into selections. Anything damaged
	// since folding is quarantined and its unit re-queued; finalize
	// then refuses with ErrShardsQuarantined rather than fold.
	probs, changed, err := verifyAndQuarantineDone(c.dir, c.man)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if changed {
		if err := saveManifest(c.dir, c.man); err != nil {
			c.mu.Unlock()
			return nil, err
		}
	}
	if len(probs) > 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("campaign: %d shard(s) failed verification (%s): %w",
			len(probs), probs[0].String(), ErrShardsQuarantined)
	}
	for _, u := range c.man.Units {
		if u.State != UnitDone {
			c.mu.Unlock()
			return nil, fmt.Errorf("campaign: cannot finalize, unit %s is %s", u.ID, u.State)
		}
	}
	cfg := c.man.Config
	units := append([]UnitRecord(nil), c.man.Units...)
	c.mu.Unlock()

	res := &Result{}
	selections := map[string][]SelectionRecord{}
	for _, tgtName := range cfg.Targets {
		preds, err := c.readTargetPredictions(units, tgtName)
		if err != nil {
			return nil, err
		}
		tr, err := c.selectForTarget(cfg, tgtName, preds)
		if err != nil {
			return nil, err
		}
		res.PerTarget = append(res.PerTarget, tr)
		selections[tgtName] = tr.Selections
		res.Tested += len(tr.Selections)
		res.Hits += tr.PrimaryHits
		res.Confirmed += tr.Confirmed
	}

	c.mu.Lock()
	c.man.Selections = selections
	c.man.Finalized = true
	err = saveManifest(c.dir, c.man)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// readTargetPredictions folds one target's unit shards, in chunk
// order and shard-index order, back into a flat prediction list.
func (c *Campaign) readTargetPredictions(units []UnitRecord, tgtName string) ([]screen.Prediction, error) {
	var files []*h5lite.File
	for _, u := range units {
		if u.Target != tgtName {
			continue
		}
		for _, rel := range u.Shards {
			f, err := ReadShardFile(filepath.Join(c.dir, rel))
			if err != nil {
				return nil, fmt.Errorf("campaign: unit %s: %w", u.ID, err)
			}
			files = append(files, f)
		}
	}
	preds, err := screen.ReadShards(files)
	if err != nil {
		return nil, fmt.Errorf("campaign: target %s: %w", tgtName, err)
	}
	return preds, nil
}

// selectForTarget is the per-target tail of the funnel: aggregate,
// AMPL, cost-weighted ranking, two-stage assay.
func (c *Campaign) selectForTarget(cfg Config, tgtName string, preds []screen.Prediction) (TargetResult, error) {
	tgt := target.ByName(tgtName)
	scores := screen.AggregateByCompound(preds)

	ampl := mmgbsa.NewAMPL(tgt)
	fitSet := c.deck
	if len(fitSet) > cfg.AMPLFitMax {
		fitSet = fitSet[:cfg.AMPLFitMax]
	}
	if err := ampl.Fit(fitSet); err == nil {
		screen.AttachAMPL(scores, ampl, c.byID)
	}

	selected := screen.SelectForExperiment(scores, cfg.Weights, cfg.TopN)
	tr := TargetResult{Target: tgtName, Screened: len(scores)}

	mols := make([]*chem.Mol, 0, len(selected))
	for _, cs := range selected {
		mols = append(mols, c.byID[cs.CompoundID])
	}
	conf := assay.Screen(tgt, mols, cfg.AssayThreshold)
	primary := map[int]bool{}
	confirmed := map[int]bool{}
	for _, i := range conf.PrimaryHits {
		primary[i] = true
	}
	for _, i := range conf.Confirmed {
		confirmed[i] = true
	}
	primaryAssay := assay.ForTarget(tgt)
	for i, cs := range selected {
		rec := SelectionRecord{
			CompoundID: cs.CompoundID,
			Fusion:     cs.Fusion,
			Vina:       cs.Vina,
			MMGBSA:     cs.MMGBSA,
			AMPL:       cs.AMPL,
			Combined:   cfg.Weights.Combined(cs),
			NumPoses:   cs.NumPoses,
			Inhibition: primaryAssay.Inhibition(mols[i]),
			PrimaryHit: primary[i],
			Confirmed:  confirmed[i],
		}
		tr.Selections = append(tr.Selections, rec)
		if rec.PrimaryHit {
			tr.PrimaryHits++
		}
		if rec.Confirmed {
			tr.Confirmed++
		}
	}
	return tr, nil
}

// ReadShardFile loads and verifies one prediction shard written by
// WriteShardFile. The whole file is read through the disk-fault layer
// and decoded with its path stamped into any corruption report, so a
// damaged shard surfaces as a *h5lite.CorruptError naming the file —
// which the self-healing sync loop and fsck key on — never as
// silently wrong floats.
func ReadShardFile(path string) (*h5lite.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return h5lite.Decode(path, faultReadPayload(path, data))
}
