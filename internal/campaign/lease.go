// Lease-aware claim protocol for the distributed campaign runtime.
//
// The campaign directory is the shared store: next to manifest.json
// and shards/ it gains claims/ and results/. Workers claim a work
// unit by exclusively creating claims/<unit>.e<epoch>.claim — the
// file is materialized complete via temp-write + hard-link, so a
// reader never sees a torn claim and two racing workers can never
// both win (link fails with EEXIST for the loser). The claim's epoch
// is the fence: when a lease expires the coordinator bumps the unit's
// epoch in the manifest and the stale claim file stays behind as a
// tombstone, so a zombie worker resuming after lease loss can only
// ever touch <unit>.e<old> artifacts, which the coordinator ignores.
// Completion is acked by atomically writing
// results/<unit>.e<epoch>.json; only the record matching the unit's
// current epoch is folded into the manifest.
//
// The coordinator is the ONLY writer of manifest.json. Workers read
// it and write claim files, heartbeat renewals (atomic rewrite of
// their own claim file), shards, and result records — all
// temp+rename, mirroring the PR 2 shard protocol, so a kill at any
// instant leaves every file either absent or complete.
package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Claim/ack protocol errors. ErrNoWork and ErrAllDone are the two
// empty-claim outcomes a worker distinguishes: retry later vs exit.
var (
	// ErrNoWork reports that every unfinished unit is currently
	// claimed by some worker; the caller should poll again.
	ErrNoWork = errors.New("campaign: no claimable unit (all leased)")
	// ErrAllDone reports that every unit is done or failed; a worker
	// receiving it exits.
	ErrAllDone = errors.New("campaign: all units settled")
	// ErrLeaseLost reports that the unit's manifest epoch has moved
	// past the claim's — the lease expired and the unit was
	// reassigned. The worker must abandon the unit; any artifacts it
	// already wrote under the old epoch are ignored by the
	// coordinator.
	ErrLeaseLost = errors.New("campaign: lease lost (unit reassigned at a newer epoch)")
)

// LeaseOptions sets the lease state machine's two time constants.
type LeaseOptions struct {
	// TTL is how long a claim stays live past its last heartbeat
	// before the coordinator declares the worker dead and reassigns
	// the unit. Zero means 30s.
	TTL time.Duration
	// Heartbeat is the renewal cadence workers hold themselves to; it
	// must be comfortably under TTL so one missed beat never costs a
	// healthy worker its lease. Zero means TTL/4.
	Heartbeat time.Duration
}

// DefaultLeaseOptions returns the production lease constants.
func DefaultLeaseOptions() LeaseOptions {
	return LeaseOptions{TTL: 30 * time.Second}
}

func (o LeaseOptions) withDefaults() LeaseOptions {
	if o.TTL <= 0 {
		o.TTL = 30 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.TTL / 4
	}
	return o
}

// ClaimRecord is the durable lease on one work unit: which worker
// holds it, at which claim epoch, and when it last proved liveness.
type ClaimRecord struct {
	Unit      string    `json:"unit"`
	Epoch     int       `json:"epoch"`
	Worker    string    `json:"worker"`
	Granted   time.Time `json:"granted"`
	Heartbeat time.Time `json:"heartbeat"`
}

// ResultRecord is a worker's completion ack for one claim: the unit
// outcome plus the (unit, epoch) identity the coordinator fences it
// by. A non-empty Err acks a unit that exhausted its retry budget.
type ResultRecord struct {
	Unit     string    `json:"unit"`
	Epoch    int       `json:"epoch"`
	Worker   string    `json:"worker"`
	Poses    int       `json:"poses"`
	Skipped  int       `json:"skipped"`
	Attempts int       `json:"attempts"`
	Shards   []string  `json:"shards,omitempty"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	Err      string    `json:"error,omitempty"`
}

const (
	claimDirName  = "claims"
	resultDirName = "results"
)

func claimPath(dir, unit string, epoch int) string {
	return filepath.Join(dir, claimDirName, fmt.Sprintf("%s.e%05d.claim", unit, epoch))
}

func resultPath(dir, unit string, epoch int) string {
	return filepath.Join(dir, resultDirName, fmt.Sprintf("%s.e%05d.json", unit, epoch))
}

// ensureDispatchDirs creates the claim and result directories.
func ensureDispatchDirs(dir string) error {
	for _, d := range []string{claimDirName, resultDirName} {
		if err := os.MkdirAll(filepath.Join(dir, d), 0o755); err != nil {
			return err
		}
	}
	return nil
}

// writeJSONTemp serializes v into a fresh fsynced temp file next to
// path and returns the temp name. The payload passes through the
// disk-fault layer (keyed on the final path) so the lease store's
// exclusive-create is fault-injectable like every other durable
// write.
func writeJSONTemp(path string, v any) (string, error) {
	data, err := marshalJSONRecord(v)
	if err != nil {
		return "", err
	}
	data, err = faultWritePayload(path, data)
	if err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return tmp.Name(), nil
}

// marshalJSONRecord is the shared on-disk JSON shape: indented, with
// a trailing newline.
func marshalJSONRecord(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// createExclusiveJSON atomically materializes path with v's JSON iff
// path does not exist: the content is written to a temp file first
// and hard-linked into place, so the exclusive create is also
// all-or-nothing — a concurrent reader sees either no file or the
// complete record, and exactly one of two racing creators wins
// (the loser gets fs.ErrExist).
func createExclusiveJSON(path string, v any) error {
	tmp, err := writeJSONTemp(path, v)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if err := os.Link(tmp, path); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return fs.ErrExist
		}
		return err
	}
	// Make the new directory entry durable: a claim that evaporates on
	// reboot would let two workers win the same unit across a crash.
	return syncDir(filepath.Dir(path))
}

// WriteJSONAtomic atomically and durably replaces path with v's JSON
// (temp-write + fsync + rename + parent-dir fsync, via commitBytes) —
// the heartbeat-renewal and result-ack write primitive, also reused
// by the screening service for request records.
func WriteJSONAtomic(path string, v any) error {
	data, err := marshalJSONRecord(v)
	if err != nil {
		return err
	}
	return commitBytes(path, data)
}

// WriteBytesAtomic atomically and durably replaces path with data
// (temp-write + fsync + rename + parent-dir fsync, via commitBytes) —
// the raw-bytes member of the atomic-write family, used by the HTTP
// dispatch server to land uploaded shard bytes and by remote workers
// to mirror the manifest. A kill or power loss at any instant leaves
// path absent, the old content, or the new content — never a torn
// file.
func WriteBytesAtomic(path string, data []byte) error {
	return commitBytes(path, data)
}

// parseEpochName splits "<unit>.e<NNNNN><ext>" into (unit, epoch).
func parseEpochName(name, ext string) (string, int, bool) {
	if !strings.HasSuffix(name, ext) {
		return "", 0, false
	}
	stem := strings.TrimSuffix(name, ext)
	i := strings.LastIndex(stem, ".e")
	if i < 0 {
		return "", 0, false
	}
	epoch, err := strconv.Atoi(stem[i+2:])
	if err != nil {
		return "", 0, false
	}
	return stem[:i], epoch, true
}

// readClaimFiles loads every claim record, keyed unit -> epoch.
// Unparsable files (a crashed writer's leftover temp, a truncated
// record — impossible under the link/rename protocol but cheap to
// tolerate) are skipped.
func readClaimFiles(dir string) (map[string]map[int]ClaimRecord, error) {
	return readEpochJSON[ClaimRecord](filepath.Join(dir, claimDirName), ".claim")
}

// readResultFiles loads every result record, keyed unit -> epoch.
func readResultFiles(dir string) (map[string]map[int]ResultRecord, error) {
	return readEpochJSON[ResultRecord](filepath.Join(dir, resultDirName), ".json")
}

func readEpochJSON[T any](dir, ext string) (map[string]map[int]T, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := map[string]map[int]T{}
	for _, e := range entries {
		unit, epoch, ok := parseEpochName(e.Name(), ext)
		if !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var rec T
		if err := json.Unmarshal(data, &rec); err != nil {
			continue
		}
		m, ok := out[unit]
		if !ok {
			m = map[int]T{}
			out[unit] = m
		}
		m[epoch] = rec
	}
	return out, nil
}

// maxEpoch returns the largest epoch key in m, or -1 when empty.
func maxEpoch[T any](m map[int]T) int {
	max := -1
	for e := range m {
		if e > max {
			max = e
		}
	}
	return max
}
