package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

// selectionBytes renders a manifest's selections deterministically,
// the byte-level identity the resume guarantee is stated in.
func selectionBytes(t *testing.T, dir string) []byte {
	t.Helper()
	m, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Finalized {
		t.Fatalf("campaign in %s not finalized", dir)
	}
	b, err := json.MarshalIndent(m.Selections, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestResumeAfterKillMatchesUninterrupted is the core durability
// guarantee: a campaign killed mid-flight and resumed from its
// manifest skips completed chunks, re-runs only the rest, and
// produces byte-identical per-target selections to an uninterrupted
// run of the same configuration.
func TestResumeAfterKillMatchesUninterrupted(t *testing.T) {
	cfg := tinyConfig()

	// Reference: the uninterrupted campaign.
	dirA := filepath.Join(t.TempDir(), "uninterrupted")
	ca, err := New(dirA, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantSel := selectionBytes(t, dirA)

	// Victim: kill the campaign after two units complete.
	dirB := filepath.Join(t.TempDir(), "killed")
	cb, err := New(dirB, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	doneBeforeKill := map[string]bool{}
	cb.OnUnitDone = func(u UnitRecord) {
		mu.Lock()
		defer mu.Unlock()
		doneBeforeKill[u.ID] = true
		if len(doneBeforeKill) == 2 {
			cancel()
		}
	}
	if _, err := cb.Run(ctx); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("killed run returned %v, want ErrInterrupted", err)
	}
	st, err := ReadStatus(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done == 0 || st.Done == st.Total {
		t.Fatalf("kill landed at %d/%d done units; test needs a partial campaign", st.Done, st.Total)
	}
	if st.Finalized {
		t.Fatal("killed campaign must not be finalized")
	}
	// The authoritative completed-at-kill set is the manifest on disk.
	mKill, err := loadManifest(dirB)
	if err != nil {
		t.Fatal(err)
	}
	doneAtKill := map[string]bool{}
	for _, u := range mKill.Units {
		if u.State == UnitDone {
			doneAtKill[u.ID] = true
		}
	}

	// Resume in a "fresh process": reload the manifest and a
	// deterministically reconstructed model.
	cr, err := Load(dirB, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	var rerun []string
	cr.OnUnitStart = func(u UnitRecord) {
		mu.Lock()
		defer mu.Unlock()
		rerun = append(rerun, u.ID)
	}
	if _, err := cr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Every unit ends done...
	mu.Lock()
	defer mu.Unlock()
	mb, err := loadManifest(dirB)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range mb.Units {
		if u.State != UnitDone {
			t.Fatalf("unit %s is %s after resume", u.ID, u.State)
		}
	}
	// ...completed chunks were not re-scored (no rerun unit was in
	// the done set persisted at kill time), and only the remainder
	// ran.
	for _, id := range rerun {
		if doneAtKill[id] {
			t.Fatalf("unit %s was completed before the kill but re-scored on resume", id)
		}
	}
	if want := len(mb.Units) - len(doneAtKill); len(rerun) != want {
		t.Fatalf("resume ran %d units, want the %d not completed at kill time", len(rerun), want)
	}

	// ...and the final selections are byte-identical.
	gotSel := selectionBytes(t, dirB)
	if string(gotSel) != string(wantSel) {
		t.Fatalf("resumed selections differ from uninterrupted run:\nresumed:\n%s\nuninterrupted:\n%s", gotSel, wantSel)
	}
}

// TestFailureInjectionRetriesPerChunk injects the paper's observed
// job failures and checks that they are absorbed per-chunk — the
// campaign completes, at least one chunk consumed extra attempts, and
// the selections still match a failure-free run byte for byte
// (retries change the failure dice, never the scores).
func TestFailureInjectionRetriesPerChunk(t *testing.T) {
	clean := tinyConfig()
	dirA := filepath.Join(t.TempDir(), "clean")
	ca, err := New(dirA, clean, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantSel := selectionBytes(t, dirA)

	faulty := tinyConfig()
	faulty.Job.FailureProb = 0.5
	faulty.MaxAttempts = 12
	dirB := filepath.Join(t.TempDir(), "faulty")
	cb, err := New(dirB, faulty, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m, err := loadManifest(dirB)
	if err != nil {
		t.Fatal(err)
	}
	extra := 0
	for _, u := range m.Units {
		extra += u.Attempts - 1
	}
	if extra == 0 {
		t.Fatal("no injected failure fired; the test exercises nothing")
	}
	if got := selectionBytes(t, dirB); string(got) != string(wantSel) {
		t.Fatalf("failure-injected selections differ from clean run:\n%s\nvs\n%s", got, wantSel)
	}
}

// TestExhaustedRetriesFailUnitAndResume drives a chunk past its
// retry budget, checks Run surfaces the failure with the rest of the
// campaign intact, and that a later Run (fresh budget, advanced
// failure seeds) completes it.
func TestExhaustedRetriesFailUnitAndResume(t *testing.T) {
	cfg := tinyConfig()
	cfg.Job.FailureProb = 0.5
	cfg.MaxAttempts = 1 // a single failed roll fails the unit
	dir := filepath.Join(t.TempDir(), "budget")
	c, err := New(dir, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := c.Run(context.Background())
	if runErr == nil {
		t.Skip("no unit drew the failure dice at this seed; nothing to exercise")
	}
	st, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed == 0 {
		t.Fatalf("Run errored (%v) but no unit is recorded failed", runErr)
	}
	if st.Done == 0 {
		t.Fatal("a single bad chunk must not sink the other units")
	}
	// Retry until the advancing per-attempt seeds clear the dice.
	for i := 0; i < 20; i++ {
		cl, err := Load(dir, tinyScorers())
		if err != nil {
			t.Fatal(err)
		}
		if _, err = cl.Run(context.Background()); err == nil {
			return
		}
	}
	t.Fatal("failed units never cleared despite advancing retry seeds")
}
