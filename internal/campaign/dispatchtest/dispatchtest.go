// Package dispatchtest holds the shared verification kit for
// campaign dispatch backends: the tiny deterministic campaign fixture
// every distributed-runtime test builds on, and the Dispatcher
// conformance suite both the filesystem store and the HTTP backend
// must pass. It lives outside the _test files so the dispatch,
// dispatchhttp and campaign test packages can all drive one suite
// instead of three drifting copies.
package dispatchtest

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"deepfusion/internal/campaign"
	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/screen"
)

// TinyModel builds an untrained-but-deterministic Coherent Fusion
// model: two calls with the same seeds produce identical weights, so
// every worker process (and every worker incarnation in the chaos
// harnesses) reconstructs exactly the scorer the coordinator
// recorded.
func TinyModel() *fusion.Fusion {
	cnnCfg := fusion.DefaultCNN3DConfig()
	cnnCfg.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cnnCfg.ConvFilters1 = 4
	cnnCfg.ConvFilters2 = 6
	cnnCfg.DenseNodes = 8
	sgCfg := fusion.DefaultSGCNNConfig()
	sgCfg.CovGatherWidth = 6
	sgCfg.NonCovGatherWidth = 8
	cnn := fusion.NewCNN3D(cnnCfg, 1)
	sg := fusion.NewSGCNN(sgCfg, 2)
	return fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 3)
}

// TinyScorers wraps TinyModel as a one-scorer set.
func TinyScorers() []screen.Scorer {
	return []screen.Scorer{TinyModel()}
}

// TinyConfig is a three-target campaign with three work units per
// target: enough grid for reassignment churn, small enough to run in
// unit-test time.
func TinyConfig() campaign.Config {
	cfg := campaign.DefaultConfig()
	cfg.Targets = []string{"protease1", "protease2", "spike1"}
	cfg.Compounds = 6
	cfg.ChunkSize = 2
	cfg.MaxPoses = 2
	cfg.Workers = 2
	cfg.TopN = 4
	cfg.Shards = 2
	cfg.Job = screen.DefaultJobOptions()
	cfg.Job.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cfg.Seed = 11
	return cfg
}

// SelectionBytes serializes a finalized campaign's per-target
// selections — the byte-identity oracle shared by every
// distributed-runtime test.
func SelectionBytes(t *testing.T, dir string) []byte {
	t.Helper()
	sel, err := campaign.ReadSelections(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(sel, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ReferenceRun executes the campaign uninterrupted in a single
// process and returns its directory and selection bytes — the golden
// answer every distributed run must reproduce exactly.
func ReferenceRun(t *testing.T, cfg campaign.Config) (string, []byte) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ref")
	c, err := campaign.New(dir, cfg, TinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return dir, SelectionBytes(t, dir)
}
