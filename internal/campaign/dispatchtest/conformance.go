package dispatchtest

import (
	"errors"
	"testing"
	"time"

	"deepfusion/internal/campaign"
)

// Backend is one dispatch backend under conformance test: the worker
// side (Dispatcher handles), the coordinator side (Sync, Status), and
// the shared fake clock the lease state machine runs on.
type Backend struct {
	// Dispatcher returns a worker's lease handle. Implementations may
	// hand every worker one shared store (fs) or a per-worker client
	// (http).
	Dispatcher func(workerID string) campaign.Dispatcher
	// Sync runs one coordinator pass at virtual time now, folding
	// claims and acks into the manifest and expiring stale leases.
	Sync func(now time.Time) (campaign.SyncReport, error)
	// Status reads the coordinator-side campaign status.
	Status func() (campaign.Status, error)
	// Clock is the injected fake clock both sides share.
	Clock *campaign.FakeClock
	// Lease is the TTL regime the backend was configured with.
	Lease campaign.LeaseOptions
}

// Conformance runs the shared Dispatcher contract suite against a
// backend: claim exclusivity, expiry-reassign-exactly-once, zombie
// fencing with poses counted exactly once, idempotent Complete
// retries, and renewal keeping a slow-but-alive worker's lease. Every
// subtest gets a fresh backend from setup; all time is virtual.
func Conformance(t *testing.T, setup func(t *testing.T) *Backend) {
	t.Run("ClaimExclusivityAndNoWork", func(t *testing.T) {
		b := setup(t)
		st, err := b.Status()
		if err != nil {
			t.Fatal(err)
		}
		claimed := map[string]string{}
		for i := 0; i < st.Total; i++ {
			d := b.Dispatcher(workerN(i))
			c, u, err := d.Claim(workerN(i))
			if err != nil {
				t.Fatalf("claim %d: %v", i, err)
			}
			if c.Unit != u.ID {
				t.Fatalf("claim %d: claim unit %s != record %s", i, c.Unit, u.ID)
			}
			if prev, dup := claimed[c.Unit]; dup {
				t.Fatalf("unit %s leased to both %s and %s", c.Unit, prev, workerN(i))
			}
			claimed[c.Unit] = workerN(i)
		}
		if len(claimed) != st.Total {
			t.Fatalf("claimed %d distinct units, want all %d", len(claimed), st.Total)
		}
		if _, _, err := b.Dispatcher("extra").Claim("extra"); !errors.Is(err, campaign.ErrNoWork) {
			t.Fatalf("claim on a fully leased grid = %v, want ErrNoWork", err)
		}
	})

	t.Run("CompleteAllThenAllDone", func(t *testing.T) {
		b := setup(t)
		d := b.Dispatcher("w1")
		completed := 0
		for {
			c, _, err := d.Claim("w1")
			if errors.Is(err, campaign.ErrNoWork) {
				// Everything this worker leased is unacked in the
				// manifest until a sync folds it.
				if _, err := b.Sync(b.Clock.Now()); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if errors.Is(err, campaign.ErrAllDone) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Complete(c, campaign.UnitOutcome{Poses: 1}); err != nil {
				t.Fatalf("complete %s: %v", c.Unit, err)
			}
			completed++
		}
		st, err := b.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.Done != st.Total || completed != st.Total {
			t.Fatalf("done %d / completed %d, want all %d", st.Done, completed, st.Total)
		}
		if st.Poses != st.Total {
			t.Fatalf("poses = %d, want %d (1 per unit, exactly once)", st.Poses, st.Total)
		}
	})

	t.Run("ExpiryReassignsExactlyOnce", func(t *testing.T) {
		b := setup(t)
		d := b.Dispatcher("w1")
		c1, _, err := d.Claim("w1")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := b.Sync(b.Clock.Now().Add(b.Lease.TTL / 2))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Reassigned) != 0 || rep.InFlight != 1 {
			t.Fatalf("fresh lease: %+v, want 1 in-flight, 0 reassigned", rep)
		}
		b.Clock.Advance(b.Lease.TTL + time.Second)
		rep, err = b.Sync(b.Clock.Now())
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Reassigned) != 1 || rep.Reassigned[0] != c1.Unit {
			t.Fatalf("expired lease reassigned %v, want [%s]", rep.Reassigned, c1.Unit)
		}
		// The tombstoned claim must not re-fire.
		rep, err = b.Sync(b.Clock.Now().Add(4 * b.Lease.TTL))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Reassigned) != 0 {
			t.Fatalf("second sync reassigned %v, want nothing (tombstone re-fired)", rep.Reassigned)
		}
		// And the unit is claimable again at a fenced-off epoch.
		c2, _, err := b.Dispatcher("w2").Claim("w2")
		if err != nil {
			t.Fatal(err)
		}
		if c2.Unit != c1.Unit || c2.Epoch != c1.Epoch+1 {
			t.Fatalf("replacement claim = %s e%d, want %s e%d", c2.Unit, c2.Epoch, c1.Unit, c1.Epoch+1)
		}
	})

	t.Run("ZombieFencedPosesCountedOnce", func(t *testing.T) {
		b := setup(t)
		zombie, _, err := b.Dispatcher("w1").Claim("w1")
		if err != nil {
			t.Fatal(err)
		}
		b.Clock.Advance(b.Lease.TTL + time.Second)
		if rep, err := b.Sync(b.Clock.Now()); err != nil || len(rep.Reassigned) != 1 {
			t.Fatalf("expiry sync: rep=%+v err=%v, want 1 reassignment", rep, err)
		}
		// The zombie wakes: heartbeat and ack are both refused, and its
		// epoch-stale ack must never fold.
		if err := b.Dispatcher("w1").Heartbeat(zombie); !errors.Is(err, campaign.ErrLeaseLost) {
			t.Fatalf("zombie heartbeat = %v, want ErrLeaseLost", err)
		}
		err = b.Dispatcher("w1").Complete(zombie, campaign.UnitOutcome{Poses: 99})
		if !errors.Is(err, campaign.ErrLeaseLost) {
			t.Fatalf("zombie ack = %v, want ErrLeaseLost", err)
		}
		rep, err := b.Sync(b.Clock.Now())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Done != 0 || len(rep.Completed) != 0 {
			t.Fatalf("sync after zombie ack folded %+v, want nothing", rep)
		}
		// The replacement's ack is the one that lands — exactly once.
		fresh, _, err := b.Dispatcher("w2").Claim("w2")
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Unit != zombie.Unit || fresh.Epoch != zombie.Epoch+1 {
			t.Fatalf("replacement claim = %+v, want %s at epoch %d", fresh, zombie.Unit, zombie.Epoch+1)
		}
		if err := b.Dispatcher("w2").Complete(fresh, campaign.UnitOutcome{Poses: 7}); err != nil {
			t.Fatal(err)
		}
		if rep, err = b.Sync(b.Clock.Now()); err != nil || len(rep.Completed) != 1 {
			t.Fatalf("final sync: rep=%+v err=%v, want exactly the epoch-fenced ack", rep, err)
		}
		st, err := b.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.Done != 1 || st.Poses != 7 {
			t.Fatalf("status = %d done / %d poses, want 1 / 7 (zombie's 99 must not count)", st.Done, st.Poses)
		}
	})

	t.Run("CompleteIdempotentUnderRetry", func(t *testing.T) {
		b := setup(t)
		d := b.Dispatcher("w1")
		c, _, err := d.Claim("w1")
		if err != nil {
			t.Fatal(err)
		}
		// A Complete whose response was lost is retried by the worker;
		// both acks land the same epoch-named record and the
		// coordinator folds the unit exactly once.
		if err := d.Complete(c, campaign.UnitOutcome{Poses: 5}); err != nil {
			t.Fatal(err)
		}
		if err := d.Complete(c, campaign.UnitOutcome{Poses: 5}); err != nil && !errors.Is(err, campaign.ErrLeaseLost) {
			t.Fatalf("retried complete = %v, want idempotent success (or a fence)", err)
		}
		folded := 0
		for i := 0; i < 3; i++ {
			rep, err := b.Sync(b.Clock.Now())
			if err != nil {
				t.Fatal(err)
			}
			folded += len(rep.Completed)
		}
		if folded != 1 {
			t.Fatalf("folded %d completions across syncs, want exactly 1", folded)
		}
		st, err := b.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.Done != 1 || st.Poses != 5 {
			t.Fatalf("status = %d done / %d poses, want 1 / 5 (double-counted ack)", st.Done, st.Poses)
		}
	})

	t.Run("RenewalKeepsSlowWorkerAlive", func(t *testing.T) {
		b := setup(t)
		d := b.Dispatcher("w1")
		c, _, err := d.Claim("w1")
		if err != nil {
			t.Fatal(err)
		}
		// 8 renewals at 2/3 TTL cadence: far past the TTL in total,
		// never past it between beats.
		for i := 0; i < 8; i++ {
			b.Clock.Advance(b.Lease.TTL * 2 / 3)
			if err := d.Heartbeat(c); err != nil {
				t.Fatalf("renewal %d: %v", i, err)
			}
			rep, err := b.Sync(b.Clock.Now())
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Reassigned) != 0 || rep.InFlight != 1 {
				t.Fatalf("renewal %d: %+v, want lease held", i, rep)
			}
		}
	})
}

func workerN(i int) string {
	return "cw" + string(rune('A'+i%26))
}
