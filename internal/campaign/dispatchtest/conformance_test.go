package dispatchtest_test

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"deepfusion/internal/campaign"
	"deepfusion/internal/campaign/dispatchhttp"
	"deepfusion/internal/campaign/dispatchtest"

	"net/http/httptest"
)

// t0 anchors every conformance run's virtual time.
var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// newCampaign materializes a fresh dispatch-ready campaign directory.
func newCampaign(t *testing.T, fc *campaign.FakeClock) (string, *campaign.Campaign) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := campaign.New(dir, dispatchtest.TinyConfig(), dispatchtest.TinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PrepareDispatch(); err != nil {
		t.Fatal(err)
	}
	return dir, c
}

// TestDispatchStoreConformance runs the shared Dispatcher contract
// against the filesystem backend.
func TestDispatchStoreConformance(t *testing.T) {
	dispatchtest.Conformance(t, func(t *testing.T) *dispatchtest.Backend {
		fc := campaign.NewFakeClock(t0)
		lease := campaign.LeaseOptions{TTL: 30 * time.Second}
		dir, c := newCampaign(t, fc)
		store := campaign.NewDispatchStore(dir, fc)
		return &dispatchtest.Backend{
			Dispatcher: func(string) campaign.Dispatcher { return store },
			Sync: func(now time.Time) (campaign.SyncReport, error) {
				return c.SyncDispatch(now, lease)
			},
			Status: func() (campaign.Status, error) { return campaign.ReadStatus(dir) },
			Clock:  fc,
			Lease:  lease,
		}
	})
}

// TestDispatchHTTPConformance runs the identical contract against the
// HTTP backend: the same lease state machine observed through a real
// server and per-worker clients. Passing both proves the wire layer
// adds no semantics — only transport.
func TestDispatchHTTPConformance(t *testing.T) {
	dispatchtest.Conformance(t, func(t *testing.T) *dispatchtest.Backend {
		fc := campaign.NewFakeClock(t0)
		lease := campaign.LeaseOptions{TTL: 30 * time.Second}
		dir, c := newCampaign(t, fc)
		srv := httptest.NewServer(dispatchhttp.NewServer(dir, fc).Handler())
		t.Cleanup(srv.Close)
		scratch := t.TempDir()
		var mu sync.Mutex
		clients := map[string]*dispatchhttp.Client{}
		client := func(id string) *dispatchhttp.Client {
			mu.Lock()
			defer mu.Unlock()
			if cl, ok := clients[id]; ok {
				return cl
			}
			cl, err := dispatchhttp.NewClient(srv.URL, filepath.Join(scratch, id), dispatchhttp.Options{Clock: fc})
			if err != nil {
				t.Fatal(err)
			}
			clients[id] = cl
			return cl
		}
		return &dispatchtest.Backend{
			Dispatcher: func(id string) campaign.Dispatcher { return client(id) },
			Sync: func(now time.Time) (campaign.SyncReport, error) {
				return c.SyncDispatch(now, lease)
			},
			Status: func() (campaign.Status, error) { return client("status").Status() },
			Clock:  fc,
			Lease:  lease,
		}
	})
}
