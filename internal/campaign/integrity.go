// Shard integrity verification, quarantine and the bounded repair
// budget — the self-healing half of the durability layer.
//
// Every shard is a checksummed h5lite v2 file, so damage is
// detectable on read; this file decides what happens next. The rule:
// a corrupt or missing shard NEVER folds into selections and is NEVER
// deleted. It is moved into quarantine/ (preserved for post-mortem),
// the owning unit is re-queued at a fresh epoch, and the manifest's
// corruption/repair counters advance. Each unit carries a lifetime
// repair budget (Config.MaxRepairs); a unit that keeps producing
// corrupt shards past its budget parks as failed, which blocks
// finalize — loudly, not silently. Verification runs at the two
// fold points: syncDispatch (before a result ack retires a unit) and
// Finalize (before shards flow into selections), plus offline via
// Fsck.
package campaign

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// ErrShardsQuarantined reports that finalize found corrupt or missing
// shards, quarantined them and re-queued the owning units: the
// campaign must run those units again before it can finalize.
var ErrShardsQuarantined = errors.New("campaign: corrupt shards quarantined; units re-queued")

const quarantineDirName = "quarantine"

// QuarantineDir returns the quarantine directory inside a campaign
// directory, where corrupt shard files are preserved for post-mortem.
func QuarantineDir(dir string) string { return filepath.Join(dir, quarantineDirName) }

// ShardProblem describes one damaged or missing shard discovered
// during verification.
type ShardProblem struct {
	Unit  string `json:"unit"`
	Shard string `json:"shard"` // path relative to the campaign dir
	Err   error  `json:"-"`
	// Missing distinguishes an absent file from a present-but-corrupt
	// one (which gets quarantined).
	Missing bool `json:"missing"`
}

func (p ShardProblem) String() string {
	if p.Missing {
		return fmt.Sprintf("unit %s: shard %s missing", p.Unit, p.Shard)
	}
	return fmt.Sprintf("unit %s: shard %s corrupt: %v", p.Unit, p.Shard, p.Err)
}

// verifyShards decodes every listed shard (full CRC verification via
// ReadShardFile) and returns the problems found. An empty shard list
// on a unit that docked poses is the caller's concern; here an empty
// list verifies vacuously.
func verifyShards(dir, unitID string, shards []string) []ShardProblem {
	var probs []ShardProblem
	for _, rel := range shards {
		if _, err := ReadShardFile(filepath.Join(dir, rel)); err != nil {
			probs = append(probs, ShardProblem{
				Unit:    unitID,
				Shard:   rel,
				Err:     err,
				Missing: errors.Is(err, fs.ErrNotExist),
			})
		}
	}
	return probs
}

// quarantineShard moves one shard file (path relative to dir) into
// quarantine/, never deleting it. Collisions get a numeric suffix. A
// missing source is a no-op (nothing to preserve). Returns the
// quarantined path, or "" when nothing moved.
func quarantineShard(dir, rel string) (string, error) {
	src := filepath.Join(dir, rel)
	if _, err := os.Stat(src); errors.Is(err, fs.ErrNotExist) {
		return "", nil
	}
	qdir := QuarantineDir(dir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", err
	}
	base := filepath.Base(rel)
	dst := filepath.Join(qdir, base)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := os.Rename(src, dst); err != nil {
		return "", err
	}
	// Make both directory entries durable: the shard must not
	// resurrect into shards/ after a crash and re-poison the campaign.
	if err := syncDir(qdir); err != nil {
		return "", err
	}
	if err := syncDir(filepath.Dir(src)); err != nil {
		return "", err
	}
	return dst, nil
}

// maxRepairs is the per-unit lifetime corruption-re-queue budget.
// Manifests from before the durability layer record 0 and get the
// default.
func (m *Manifest) maxRepairs() int {
	if m.Config.MaxRepairs > 0 {
		return m.Config.MaxRepairs
	}
	return 3
}

// quarantineAndRequeue applies the repair state machine to one unit
// whose shards failed verification: preserve the damaged files in
// quarantine/, advance the corruption counters, and either re-queue
// the unit at nextEpoch (budget remaining) or park it failed (budget
// exhausted). Returns whether the unit was re-queued. The caller
// holds the manifest and persists it.
func quarantineAndRequeue(dir string, man *Manifest, u *UnitRecord, probs []ShardProblem, nextEpoch int) (requeued bool, err error) {
	for _, p := range probs {
		if _, qerr := quarantineShard(dir, p.Shard); qerr != nil {
			return false, fmt.Errorf("campaign: quarantine %s: %w", p.Shard, qerr)
		}
	}
	man.Corruptions += len(probs)
	u.Poses = 0
	u.Skipped = 0
	u.Shards = nil
	u.Worker = ""
	if u.Repairs >= man.maxRepairs() {
		u.State = UnitFailed
		return false, nil
	}
	u.Repairs++
	man.Repairs++
	u.Epoch = nextEpoch
	u.State = UnitPending
	return true, nil
}

// verifyAndQuarantineDone verifies every done unit's shards and runs
// the repair state machine on failures. Used by Finalize (and Fsck
// with repair enabled) — the distributed fold path verifies in
// syncDispatch instead, before a unit ever becomes done. The caller
// must hold c.mu. Returns the problems found and whether the
// manifest changed.
func verifyAndQuarantineDone(dir string, man *Manifest) (probs []ShardProblem, changed bool, err error) {
	// Re-queue epochs must land past every claim/result file on disk,
	// or the stale result at the current epoch would instantly re-fold.
	claims, err := readClaimFiles(dir)
	if err != nil {
		return nil, false, err
	}
	results, err := readResultFiles(dir)
	if err != nil {
		return nil, false, err
	}
	for i := range man.Units {
		u := &man.Units[i]
		if u.State != UnitDone {
			continue
		}
		unitProbs := verifyShards(dir, u.ID, u.Shards)
		if len(unitProbs) == 0 {
			continue
		}
		probs = append(probs, unitProbs...)
		e := u.Epoch
		if me := maxEpoch(claims[u.ID]); me > e {
			e = me
		}
		if me := maxEpoch(results[u.ID]); me > e {
			e = me
		}
		if _, err := quarantineAndRequeue(dir, man, u, unitProbs, e+1); err != nil {
			return probs, changed, err
		}
		changed = true
	}
	return probs, changed, nil
}
