package campaign

// Dispatcher is the worker side of the lease protocol — the claim /
// heartbeat / ack surface a worker process drives its unit loop
// through. The filesystem DispatchStore implements it directly on the
// shared campaign directory; dispatchhttp.Client implements it over
// HTTP against a coordinator that does not share a filesystem with
// the worker. Swapping backends never touches the worker loop.
//
// Implementations must preserve the protocol's error contract:
//
//   - Claim returns ErrNoWork when every unfinished unit is leased
//     elsewhere (poll again) and ErrAllDone when the campaign has
//     settled (exit). Any other error is infrastructure.
//   - Heartbeat, Complete and Fail return ErrLeaseLost when the
//     claim's epoch has been fenced — the worker abandons the unit.
//   - Complete and Fail must be idempotent at a fixed (unit, epoch):
//     a retry after a lost response re-lands the same epoch-named
//     result record, and the coordinator folds it exactly once. The
//     epoch fence, not client-side state, is the exactly-once
//     mechanism.
type Dispatcher interface {
	// Claim leases the first unfinished, unclaimed unit to workerID.
	Claim(workerID string) (*ClaimRecord, *UnitRecord, error)
	// Heartbeat renews the claim's lease.
	Heartbeat(c *ClaimRecord) error
	// Complete acks a finished unit with its outcome.
	Complete(c *ClaimRecord, out UnitOutcome) error
	// Fail acks a unit that exhausted its retry budget.
	Fail(c *ClaimRecord, out UnitOutcome, unitErr error) error
}

var _ Dispatcher = (*DispatchStore)(nil)
