package campaign

import (
	"fmt"

	"deepfusion/internal/cluster"
)

// PaperScale describes how a campaign's unit grid is projected onto
// the production system the paper ran on: each target's deck blown up
// to production size and chunked into the 2M-pose, four-node Fusion
// jobs of Figure 3, scheduled on a Lassen allocation.
type PaperScale struct {
	CompoundsPerTarget int                   // production deck per binding site
	PosesPerCompound   int                   // docked poses carried per compound
	Job                cluster.FusionJobSpec // per-job shape (poses, nodes, batch, loaders)
	AllocNodes         int                   // node allocation (paper: 500 of Lassen's 792)
}

// DefaultPaperScale reproduces the production run's shape: millions
// of compounds per target at ~10 poses each, 2M-pose four-node jobs,
// a 500-node allocation — the regime that kept ~125 jobs in flight.
func DefaultPaperScale() PaperScale {
	return PaperScale{
		CompoundsPerTarget: 6_250_000,
		PosesPerCompound:   10,
		Job:                cluster.DefaultFusionJob(),
		AllocNodes:         500,
	}
}

// Plan expands the campaign's targets into the production job list:
// per target, ceil(compounds x poses / job poses) Fusion jobs, the
// last one partial. The jobs inherit the plan order of the targets so
// the simulated scheduler interleaves targets the way the campaign
// queue would.
func (ps PaperScale) Plan(targets []string) ([]cluster.PlanJob, error) {
	if ps.CompoundsPerTarget < 1 || ps.PosesPerCompound < 1 || ps.Job.Poses < 1 {
		return nil, fmt.Errorf("campaign: paper scale needs positive compounds, poses and job size")
	}
	var jobs []cluster.PlanJob
	perTarget := ps.CompoundsPerTarget * ps.PosesPerCompound
	for _, t := range targets {
		remaining := perTarget
		for remaining > 0 {
			spec := ps.Job
			if remaining < spec.Poses {
				spec.Poses = remaining
			}
			jobs = append(jobs, cluster.PlanJob{Target: t, Spec: spec})
			remaining -= spec.Poses
		}
	}
	return jobs, nil
}

// SimulateAtPaperScale projects a campaign configuration onto the
// paper's production system: the same per-target work-unit structure
// the orchestrator schedules at repro scale, re-expressed as 2M-pose
// Fusion jobs and pushed through the cluster's discrete-event LSF
// simulator. It answers the campaign-level questions the paper
// reports — makespan, queueing, resubmission drag — without spending
// real compute.
func SimulateAtPaperScale(cfg Config, ps PaperScale, seed int64) (cluster.PlanResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return cluster.PlanResult{}, err
	}
	jobs, err := ps.Plan(cfg.Targets)
	if err != nil {
		return cluster.PlanResult{}, err
	}
	return cluster.SimulatePlan(jobs, ps.AllocNodes, seed)
}
