package md

import (
	"math"
	"testing"
	"testing/quick"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// testMol returns an embedded, pocket-placed ligand for MD tests.
func testMol(t *testing.T, smiles string, p *target.Pocket) *chem.Mol {
	t.Helper()
	m, err := chem.ParseSMILES(smiles)
	if err != nil {
		t.Fatalf("ParseSMILES(%q): %v", smiles, err)
	}
	chem.Embed3D(m, 42)
	if p != nil {
		m = p.PlaceLigand(m)
	}
	return m
}

func TestForcesMatchNumericalGradient(t *testing.T) {
	p := target.Protease1
	m := testMol(t, "CC(=O)Nc1ccc(O)cc1", p) // paracetamol-like
	s := NewSystem(p, m, 1)
	_, forces := s.EnergyForces()

	const h = 1e-5
	for i := range s.mol.Atoms {
		for axis := 0; axis < 3; axis++ {
			orig := s.mol.Atoms[i].Pos
			bump := func(d float64) float64 {
				pos := orig
				switch axis {
				case 0:
					pos.X += d
				case 1:
					pos.Y += d
				default:
					pos.Z += d
				}
				s.mol.Atoms[i].Pos = pos
				e := s.PotentialEnergy()
				s.mol.Atoms[i].Pos = orig
				return e
			}
			num := -(bump(h) - bump(-h)) / (2 * h)
			var ana float64
			switch axis {
			case 0:
				ana = forces[i].X
			case 1:
				ana = forces[i].Y
			default:
				ana = forces[i].Z
			}
			tol := 1e-4 * (1 + math.Abs(num))
			if math.Abs(num-ana) > tol {
				t.Fatalf("atom %d axis %d: analytic force %.8f vs numerical %.8f", i, axis, ana, num)
			}
		}
	}
}

func TestInternalForcesSumToZeroInVacuum(t *testing.T) {
	m := testMol(t, "CCOC(=O)C", nil)
	s := NewSystem(nil, m, 1)
	// Perturb the geometry so forces are non-trivial.
	for i := range s.mol.Atoms {
		s.mol.Atoms[i].Pos.X += 0.1 * float64(i%3)
		s.mol.Atoms[i].Pos.Y -= 0.07 * float64(i%2)
	}
	var sum chem.Vec3
	var fMax float64
	for _, f := range s.Forces() {
		sum = sum.Add(f)
		if n := f.Norm(); n > fMax {
			fMax = n
		}
	}
	if fMax == 0 {
		t.Fatal("expected non-zero forces after perturbation")
	}
	if sum.Norm() > 1e-9*fMax {
		t.Fatalf("internal forces must obey Newton's third law: |sum| = %g (max %g)", sum.Norm(), fMax)
	}
}

func TestNVEConservesEnergy(t *testing.T) {
	p := target.Spike1
	m := testMol(t, "c1ccccc1CCN", p)
	s := NewSystem(p, m, 7)
	s.Minimize(200, 0.5) // start near a minimum so the surface is harmonic-ish
	s.InitVelocities(50)
	e0 := s.TotalEnergy()
	s.VelocityVerlet(0.25, 400)
	e1 := s.TotalEnergy()
	scale := math.Max(math.Abs(e0), 1)
	if drift := math.Abs(e1-e0) / scale; drift > 0.02 {
		t.Fatalf("NVE drift %.4f (E0=%.3f E1=%.3f) exceeds 2%%", drift, e0, e1)
	}
}

func TestNVESmallerStepDriftsLess(t *testing.T) {
	p := target.Spike1
	m := testMol(t, "CC(C)Cc1ccccc1", p)
	drift := func(dtFs float64, steps int) float64 {
		s := NewSystem(p, m, 11)
		s.Minimize(200, 0.5)
		s.InitVelocities(80)
		e0 := s.TotalEnergy()
		s.VelocityVerlet(dtFs, steps)
		return math.Abs(s.TotalEnergy() - e0)
	}
	// Same simulated duration: 100 fs.
	big := drift(2.0, 50)
	small := drift(0.25, 400)
	if small > big+1e-9 {
		t.Fatalf("expected smaller timestep to conserve energy at least as well: dt=0.25 drift %.5f vs dt=2.0 drift %.5f", small, big)
	}
}

func TestLangevinEquilibratesTemperature(t *testing.T) {
	p := target.Protease2
	m := testMol(t, "NC(=O)c1ccc(Cl)cc1", p)
	s := NewSystem(p, m, 3)
	s.Minimize(150, 0.5)
	const want = 300.0
	s.InitVelocities(want)
	s.Langevin(1.0, want, 5.0, 300) // equilibration
	var sum float64
	const samples = 200
	for i := 0; i < samples; i++ {
		s.Langevin(1.0, want, 5.0, 5)
		sum += s.Temperature()
	}
	avg := sum / samples
	if avg < want*0.55 || avg > want*1.45 {
		t.Fatalf("Langevin average temperature %.1f K not near target %v K", avg, want)
	}
}

func TestMinimizeReducesEnergyAndForce(t *testing.T) {
	p := target.Protease1
	m := testMol(t, "OC(=O)c1ccccc1O", p)
	s := NewSystem(p, m, 5)
	// Strain the geometry.
	for i := range s.mol.Atoms {
		s.mol.Atoms[i].Pos.X += 0.3 * float64(i%2)
	}
	e0 := s.PotentialEnergy()
	f0 := s.MaxForce()
	steps, e1 := s.Minimize(300, 0.5)
	if steps == 0 {
		t.Fatal("expected at least one minimization step on a strained geometry")
	}
	if e1 >= e0 {
		t.Fatalf("minimization must lower energy: %.4f -> %.4f", e0, e1)
	}
	if f1 := s.MaxForce(); f1 >= f0 {
		t.Fatalf("minimization must reduce the max force: %.4f -> %.4f", f0, f1)
	}
	if got := s.PotentialEnergy(); math.Abs(got-e1) > 1e-9 {
		t.Fatalf("Minimize returned energy %.6f but system reports %.6f", e1, got)
	}
}

func TestMinimizeConvergesOnMinimum(t *testing.T) {
	m := testMol(t, "CCO", nil)
	s := NewSystem(nil, m, 1)
	s.Minimize(500, 1e-3)
	// A second call from the converged geometry should do ~nothing.
	before := s.PotentialEnergy()
	steps, after := s.Minimize(50, 1e-3)
	if steps > 2 {
		t.Fatalf("expected converged geometry to need <=2 further steps, got %d", steps)
	}
	if math.Abs(after-before) > 1e-3 {
		t.Fatalf("energy moved %.6f -> %.6f after convergence", before, after)
	}
}

func TestSystemClonesInput(t *testing.T) {
	p := target.Spike2
	m := testMol(t, "CCN(CC)CC", p)
	orig := m.Clone()
	s := NewSystem(p, m, 9)
	s.InitVelocities(300)
	s.Langevin(1.0, 300, 5.0, 50)
	for i := range m.Atoms {
		if m.Atoms[i].Pos != orig.Atoms[i].Pos {
			t.Fatal("NewSystem must not mutate the caller's molecule")
		}
	}
	// Mol() must also be a snapshot, not an alias.
	snap := s.Mol()
	snap.Atoms[0].Pos.X += 100
	if s.mol.Atoms[0].Pos.X == snap.Atoms[0].Pos.X {
		t.Fatal("Mol() must return an independent clone")
	}
}

func TestEmptyAndVacuumSystems(t *testing.T) {
	empty := NewSystem(nil, &chem.Mol{}, 1)
	empty.VelocityVerlet(1, 10)
	empty.Langevin(1, 300, 5, 10)
	empty.InitVelocities(300)
	if steps, e := empty.Minimize(10, 0.1); steps != 0 || e != 0 {
		t.Fatalf("empty system Minimize = (%d, %g), want (0, 0)", steps, e)
	}
	if got := empty.Temperature(); got != 0 {
		t.Fatalf("empty system temperature = %g, want 0", got)
	}

	vac := NewSystem(nil, testMol(t, "CC", nil), 1)
	if e := vac.PotentialEnergy(); math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("vacuum energy not finite: %g", e)
	}
}

func TestInitVelocitiesHitsTargetTemperature(t *testing.T) {
	check := func(seed int64) bool {
		m := testMol(t, "CCCCCCCC", nil)
		s := NewSystem(nil, m, seed)
		want := 50 + math.Abs(float64(seed%7))*100
		s.InitVelocities(want)
		return math.Abs(s.Temperature()-want) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInitVelocitiesZeroTemp(t *testing.T) {
	s := NewSystem(nil, testMol(t, "CCO", nil), 1)
	s.InitVelocities(300)
	s.InitVelocities(0)
	if ke := s.KineticEnergy(); ke != 0 {
		t.Fatalf("zero-temperature velocities should have KE 0, got %g", ke)
	}
}

func TestKineticEnergyNonNegative(t *testing.T) {
	check := func(seed int64, temp float64) bool {
		temp = math.Abs(temp)
		if temp > 1e4 {
			temp = math.Mod(temp, 1e4)
		}
		s := NewSystem(nil, testMol(t, "CCNCC", nil), seed)
		s.InitVelocities(temp)
		return s.KineticEnergy() >= 0 && s.Temperature() >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInitVelocitiesRemovesDrift(t *testing.T) {
	s := NewSystem(nil, testMol(t, "CC(C)C(=O)O", nil), 13)
	s.InitVelocities(300)
	var p chem.Vec3
	for i, v := range s.vel {
		p = p.Add(v.Scale(s.mass[i]))
	}
	if p.Norm() > 1e-9 {
		t.Fatalf("center-of-mass momentum after InitVelocities = %g, want ~0", p.Norm())
	}
}

func TestTopologyCounts(t *testing.T) {
	// Propane C-C-C: 2 bonds, 1 angle (1-3) pair, 0 non-bonded pairs.
	m := testMol(t, "CCC", nil)
	s := NewSystem(nil, m, 1)
	if len(s.bonds) != 2 || len(s.pairs13) != 1 || len(s.nbPairs) != 0 {
		t.Fatalf("propane topology = %d bonds, %d 1-3, %d nb; want 2, 1, 0",
			len(s.bonds), len(s.pairs13), len(s.nbPairs))
	}
	// Butane C-C-C-C adds one 1-4 non-bonded pair.
	m4 := testMol(t, "CCCC", nil)
	s4 := NewSystem(nil, m4, 1)
	if len(s4.bonds) != 3 || len(s4.pairs13) != 2 || len(s4.nbPairs) != 1 {
		t.Fatalf("butane topology = %d bonds, %d 1-3, %d nb; want 3, 2, 1",
			len(s4.bonds), len(s4.pairs13), len(s4.nbPairs))
	}
}

func TestSoftTermsFiniteEverywhere(t *testing.T) {
	check := func(r float64) bool {
		r = math.Abs(math.Mod(r, 20))
		for _, fn := range []func() (float64, float64){
			func() (float64, float64) { return softLJ(r, 3.0, 0.15) },
			func() (float64, float64) { return softCoulomb(r, 0.4, -0.3) },
			func() (float64, float64) { return gbDesolvation(r, 0.4) },
		} {
			e, d := fn()
			if math.IsNaN(e) || math.IsInf(e, 0) || math.IsNaN(d) || math.IsInf(d, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftLJMinimumNearSigma(t *testing.T) {
	const sigma = 3.0
	// With the softcore delta the minimum shifts slightly below sigma;
	// dE/dr must be negative before it and positive after it.
	rMin := math.Sqrt(sigma*sigma - softcore)
	if _, d := softLJ(rMin-0.1, sigma, 0.2); d >= 0 {
		t.Fatalf("dE/dr before the LJ minimum should be negative, got %g", d)
	}
	if _, d := softLJ(rMin+0.1, sigma, 0.2); d <= 0 {
		t.Fatalf("dE/dr after the LJ minimum should be positive, got %g", d)
	}
	if e, _ := softLJ(rMin, sigma, 0.2); math.Abs(e - -0.2) > 1e-9 {
		t.Fatalf("softLJ well depth at the minimum = %g, want -0.2", e)
	}
}
