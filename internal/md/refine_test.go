package md

import (
	"math"
	"testing"

	"deepfusion/internal/chem"
	"deepfusion/internal/dock"
	"deepfusion/internal/target"
)

func TestRefinePoseLowersForceFieldEnergy(t *testing.T) {
	p := target.Protease1
	m := testMol(t, "CC(=O)Nc1ccc(O)cc1", p)
	// Strain the pose so refinement has work to do: push it off its
	// docked position and squeeze one bond.
	m.Translate(chem.Vec3{X: 1.5, Y: -0.8, Z: 0.6})
	m.Atoms[0].Pos.X += 0.25
	before := NewSystem(p, m, 1).PotentialEnergy()
	refined, after := RefinePose(p, m, DefaultOptions())
	if after >= before {
		t.Fatalf("refinement must lower the force-field energy: %.3f -> %.3f", before, after)
	}
	if math.IsNaN(after) || math.IsInf(after, 0) {
		t.Fatalf("refined energy not finite: %g", after)
	}
	if len(refined.Atoms) != len(m.Atoms) {
		t.Fatalf("refinement changed the atom count: %d -> %d", len(m.Atoms), len(refined.Atoms))
	}
}

func TestRefinePoseDeterministic(t *testing.T) {
	p := target.Spike1
	m := testMol(t, "c1ccc2c(c1)cccc2O", p)
	o := DefaultOptions()
	a, ea := RefinePose(p, m, o)
	b, eb := RefinePose(p, m, o)
	if ea != eb {
		t.Fatalf("same seed must give the same energy: %v vs %v", ea, eb)
	}
	for i := range a.Atoms {
		if a.Atoms[i].Pos != b.Atoms[i].Pos {
			t.Fatalf("same seed must give identical geometry (atom %d differs)", i)
		}
	}
}

func TestRefinePoseDoesNotMutateInput(t *testing.T) {
	p := target.Protease2
	m := testMol(t, "CCOC(=O)c1ccccc1N", p)
	orig := m.Clone()
	RefinePose(p, m, DefaultOptions())
	for i := range m.Atoms {
		if m.Atoms[i].Pos != orig.Atoms[i].Pos {
			t.Fatal("RefinePose must not modify the input molecule")
		}
	}
}

func TestRefinePosePreservesBondLengths(t *testing.T) {
	p := target.Protease1
	m := testMol(t, "NC(Cc1ccccc1)C(=O)O", p)
	refined, _ := RefinePose(p, m, DefaultOptions())
	for _, b := range m.Bonds {
		r0 := m.Atoms[b.A].Pos.Dist(m.Atoms[b.B].Pos)
		r1 := refined.Atoms[b.A].Pos.Dist(refined.Atoms[b.B].Pos)
		if math.Abs(r1-r0)/r0 > 0.15 {
			t.Fatalf("bond %d-%d stretched %.2f -> %.2f A (>15%%): annealing must not tear the molecule",
				b.A, b.B, r0, r1)
		}
	}
}

func TestRefinePoseStaysNearPocket(t *testing.T) {
	p := target.Spike2
	m := testMol(t, "CC(C)NCC(O)c1ccc(O)cc1", p)
	refined, _ := RefinePose(p, m, DefaultOptions())
	if d := refined.Centroid().Norm(); d > p.Radius+6 {
		t.Fatalf("refined pose drifted %.1f A from the pocket (radius %.1f)", d, p.Radius)
	}
}

func TestRefinePoseNoAnnealIsPureMinimization(t *testing.T) {
	p := target.Protease1
	m := testMol(t, "Oc1ccccc1", p)
	o := DefaultOptions()
	o.AnnealSteps = 0
	_, e := RefinePose(p, m, o)
	s := NewSystem(p, m, o.Seed)
	s.Minimize(o.MinimizeSteps, minimizeTolCoarse)
	_, want := s.Minimize(o.MinimizeSteps, minimizeTolFine)
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("with AnnealSteps=0 RefinePose should equal double minimization: %v vs %v", e, want)
	}
}

func TestRefineDockPosesSortedAndRanked(t *testing.T) {
	p := target.Protease1
	m := testMol(t, "CC(=O)Oc1ccccc1C(=O)O", nil)
	poses := dock.Dock(p, m, dock.DefaultSearchOptions())
	if len(poses) == 0 {
		t.Fatal("docking produced no poses")
	}
	o := DefaultOptions()
	o.AnnealSteps = 40 // keep the test fast
	refined := RefineDockPoses(p, poses, o)
	if len(refined) != len(poses) {
		t.Fatalf("got %d refined poses, want %d", len(refined), len(poses))
	}
	for i := range refined {
		if refined[i].Rank != i {
			t.Fatalf("pose %d has rank %d", i, refined[i].Rank)
		}
		if i > 0 && refined[i].Score < refined[i-1].Score {
			t.Fatalf("poses not sorted by score: %f before %f", refined[i-1].Score, refined[i].Score)
		}
	}
}

func TestRefineDockPosesEmpty(t *testing.T) {
	if got := RefineDockPoses(target.Spike1, nil, DefaultOptions()); len(got) != 0 {
		t.Fatalf("refining no poses should return none, got %d", len(got))
	}
}

func TestRefineDockPosesImprovesEnergyOnAverage(t *testing.T) {
	p := target.Protease2
	var dBefore, dAfter float64
	smiles := []string{"CCOC(=O)C", "Nc1ccc(S(N)(=O)=O)cc1", "CC(C)Cc1ccc(C(C)C(=O)O)cc1"}
	o := DefaultOptions()
	o.AnnealSteps = 40
	for i, s := range smiles {
		m := testMol(t, s, nil)
		so := dock.DefaultSearchOptions()
		so.Seed = int64(i + 1)
		poses := dock.Dock(p, m, so)
		if len(poses) == 0 {
			t.Fatalf("no poses for %q", s)
		}
		top := poses[0]
		dBefore += NewSystem(p, top.Mol, 1).PotentialEnergy()
		ref, _ := RefinePose(p, top.Mol, o)
		dAfter += NewSystem(p, ref, 1).PotentialEnergy()
	}
	if dAfter >= dBefore {
		t.Fatalf("MD refinement should lower mean force-field energy: %.3f -> %.3f", dBefore, dAfter)
	}
}
