package md

import (
	"math"

	"deepfusion/internal/chem"
)

// VelocityVerlet advances the system by steps NVE velocity-Verlet
// steps of dtFs femtoseconds each. Energy is conserved up to the
// integrator's O(dt^2) drift; use Langevin for thermostatted runs.
func (s *System) VelocityVerlet(dtFs float64, steps int) {
	if len(s.mol.Atoms) == 0 || steps <= 0 {
		return
	}
	dt := dtFs / akmaTimeFs
	_, f := s.eval(true)
	for step := 0; step < steps; step++ {
		// Half kick, full drift.
		for i := range s.vel {
			s.vel[i] = s.vel[i].Add(f[i].Scale(0.5 * dt / s.mass[i]))
			s.mol.Atoms[i].Pos = s.mol.Atoms[i].Pos.Add(s.vel[i].Scale(dt))
		}
		// New forces, second half kick.
		_, f = s.eval(true)
		for i := range s.vel {
			s.vel[i] = s.vel[i].Add(f[i].Scale(0.5 * dt / s.mass[i]))
		}
	}
}

// Langevin advances the system by steps BAOAB Langevin steps of dtFs
// femtoseconds at temperature tempK with friction gamma (1/ps). BAOAB
// splits each step into half kick (B), half drift (A), full
// Ornstein-Uhlenbeck friction/noise (O), half drift (A), half kick (B),
// which samples configurations accurately even at large time steps.
func (s *System) Langevin(dtFs, tempK, gammaPsInv float64, steps int) {
	if len(s.mol.Atoms) == 0 || steps <= 0 {
		return
	}
	dt := dtFs / akmaTimeFs
	// Convert friction from 1/ps to 1/AKMA-time.
	gamma := gammaPsInv * akmaTimeFs / 1000.0
	c1 := math.Exp(-gamma * dt)
	_, f := s.eval(true)
	for step := 0; step < steps; step++ {
		for i := range s.vel {
			// B: half kick.
			s.vel[i] = s.vel[i].Add(f[i].Scale(0.5 * dt / s.mass[i]))
			// A: half drift.
			s.mol.Atoms[i].Pos = s.mol.Atoms[i].Pos.Add(s.vel[i].Scale(0.5 * dt))
		}
		// O: exact Ornstein-Uhlenbeck update of velocities.
		for i := range s.vel {
			c2 := math.Sqrt((1 - c1*c1) * BoltzmannKcal * tempK / s.mass[i])
			s.vel[i] = s.vel[i].Scale(c1).Add(chem.Vec3{
				X: s.rng.NormFloat64() * c2,
				Y: s.rng.NormFloat64() * c2,
				Z: s.rng.NormFloat64() * c2,
			})
		}
		for i := range s.vel {
			// A: second half drift.
			s.mol.Atoms[i].Pos = s.mol.Atoms[i].Pos.Add(s.vel[i].Scale(0.5 * dt))
		}
		// B: second half kick with fresh forces.
		_, f = s.eval(true)
		for i := range s.vel {
			s.vel[i] = s.vel[i].Add(f[i].Scale(0.5 * dt / s.mass[i]))
		}
	}
}

// MaxForce returns the largest per-atom force magnitude in kcal/mol/A,
// the convergence measure used by Minimize.
func (s *System) MaxForce() float64 {
	var fMax float64
	for _, f := range s.Forces() {
		if n := f.Norm(); n > fMax {
			fMax = n
		}
	}
	return fMax
}

// Minimize relaxes the geometry by steepest descent with a
// backtracking line search, stopping after maxSteps steps or when the
// largest per-atom force falls below tolKcalPerA. It returns the
// number of accepted steps and the final potential energy. Velocities
// are untouched.
func (s *System) Minimize(maxSteps int, tolKcalPerA float64) (steps int, finalE float64) {
	if len(s.mol.Atoms) == 0 {
		return 0, 0
	}
	e, f := s.eval(true)
	alpha := 1e-3 // initial step, A^2*mol/kcal
	for steps = 0; steps < maxSteps; steps++ {
		fMax := 0.0
		for _, fi := range f {
			if n := fi.Norm(); n > fMax {
				fMax = n
			}
		}
		if fMax < tolKcalPerA {
			break
		}
		// Trial move along the force; backtrack until energy drops.
		saved := make([]chem.Vec3, len(s.mol.Atoms))
		for i := range s.mol.Atoms {
			saved[i] = s.mol.Atoms[i].Pos
		}
		accepted := false
		for try := 0; try < 20; try++ {
			for i := range s.mol.Atoms {
				s.mol.Atoms[i].Pos = saved[i].Add(f[i].Scale(alpha))
			}
			if eNew, fNew := s.eval(true); eNew < e {
				e, f = eNew, fNew
				alpha *= 1.2
				accepted = true
				break
			}
			alpha *= 0.5
		}
		if !accepted {
			for i := range s.mol.Atoms {
				s.mol.Atoms[i].Pos = saved[i]
			}
			break // line search exhausted: converged to precision
		}
	}
	return steps, e
}
