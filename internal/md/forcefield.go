// Package md implements the molecular-dynamics refinement substrate of
// the drug-discovery funnel. The paper (Section 3.1) notes that "even
// molecular dynamics (MD) simulations can be used before finalizing
// candidates for physical experimentation"; this package provides that
// final, most expensive stage: a velocity-Verlet / Langevin integrator
// over a differentiable force field whose non-bonded terms mirror the
// MM/GBSA single-point decomposition in internal/mmgbsa.
//
// The ligand is mobile; the pocket is a rigid external field, the same
// approximation ConveyorLC's MM/GBSA stage uses for rescoring. Units
// follow the AKMA convention: length in Angstroms, energy in kcal/mol,
// mass in Daltons, with time expressed in femtoseconds at the API and
// converted internally.
package md

import (
	"math"
	"math/rand"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// Physical constants (AKMA unit system).
const (
	// BoltzmannKcal is kB in kcal/(mol*K).
	BoltzmannKcal = 0.0019872041
	// akmaTimeFs is one AKMA time unit in femtoseconds: with masses in
	// Daltons, lengths in Angstroms and energies in kcal/mol,
	// accelerations F/m advance positions on this time scale.
	akmaTimeFs = 48.88821
	// softcore is the delta (Angstrom^2) added to squared distances in
	// every non-bonded term, keeping the potential and its gradient
	// finite and smooth at all separations.
	softcore = 0.25
)

// Force-field parameters. Bonded constants are generic GAFF-scale
// values; non-bonded constants match internal/mmgbsa so that the MD
// stage relaxes poses on the same energy surface MM/GBSA scores them.
const (
	bondK    = 300.0 // kcal/mol/A^2 harmonic bond constant
	angleK   = 60.0  // kcal/mol/A^2 harmonic 1-3 distance constant
	intraEps = 0.10  // kcal/mol intramolecular LJ well depth
	interEps = 0.15  // kcal/mol ligand-pocket LJ well depth
	coulK    = 332.0 // kcal*A/mol/e^2 Coulomb constant
)

// bondTerm is a harmonic restraint between two bonded atoms.
type bondTerm struct {
	a, b int
	r0   float64
}

// System is a ligand embedded in a rigid pocket field, with
// velocities, masses and precomputed bonded/non-bonded term lists.
// Construct with NewSystem; the zero value is not usable.
type System struct {
	pocket *target.Pocket // nil means vacuum (intramolecular terms only)
	mol    *chem.Mol      // positions live here; owned by the System
	vel    []chem.Vec3
	mass   []float64
	charge []float64 // crude partial charges, e units

	bonds   []bondTerm // 1-2 harmonic terms
	pairs13 []bondTerm // 1-3 harmonic terms (angle surrogate)
	nbPairs [][2]int   // intramolecular pairs >= 3 bonds apart

	rng *rand.Rand
}

// NewSystem builds an MD system for mol posed in pocket p. The
// molecule is cloned: the caller's coordinates are never modified.
// Pass a nil pocket for an isolated (vacuum) ligand. Equilibrium bond
// and 1-3 distances are taken from the input geometry, so the input
// should be a chem.Embed3D-derived conformation (as every docked pose
// is). Velocities start at zero; call InitVelocities to thermalize.
func NewSystem(p *target.Pocket, mol *chem.Mol, seed int64) *System {
	m := mol.Clone()
	n := len(m.Atoms)
	s := &System{
		pocket: p,
		mol:    m,
		vel:    make([]chem.Vec3, n),
		mass:   make([]float64, n),
		charge: make([]float64, n),
		rng:    rand.New(rand.NewSource(seed)),
	}
	// MD uses PEOE partial charges (the antechamber stage of ligand
	// prep); the cheaper single-point MM/GBSA surrogate keeps its
	// calibrated electronegativity model.
	peoe := chem.GasteigerCharges(m, 0)
	for i, a := range m.Atoms {
		e, ok := chem.Elements[a.Symbol]
		if !ok {
			e = chem.Elements["C"]
		}
		// Fold implicit hydrogens into the heavy-atom mass, the
		// united-atom convention the rest of the pipeline uses.
		s.mass[i] = e.Mass + float64(a.NumH)*chem.Elements["H"].Mass
		s.charge[i] = peoe[i]
	}
	for _, b := range m.Bonds {
		r0 := m.Atoms[b.A].Pos.Dist(m.Atoms[b.B].Pos)
		s.bonds = append(s.bonds, bondTerm{a: b.A, b: b.B, r0: r0})
	}
	s.buildTopology()
	return s
}

// buildTopology derives 1-3 terms and the >=1-4 non-bonded pair list
// from graph distances over the bond network.
func (s *System) buildTopology() {
	n := len(s.mol.Atoms)
	if n == 0 {
		return
	}
	adj := make([][]int, n)
	for _, b := range s.mol.Bonds {
		adj[b.A] = append(adj[b.A], b.B)
		adj[b.B] = append(adj[b.B], b.A)
	}
	const unreach = 1 << 30
	dist := make([][]int, n)
	for src := 0; src < n; src++ {
		d := make([]int, n)
		for i := range d {
			d[i] = unreach
		}
		d[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if d[w] > d[v]+1 {
					d[w] = d[v] + 1
					queue = append(queue, w)
				}
			}
		}
		dist[src] = d
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case dist[i][j] == 2:
				r0 := s.mol.Atoms[i].Pos.Dist(s.mol.Atoms[j].Pos)
				s.pairs13 = append(s.pairs13, bondTerm{a: i, b: j, r0: r0})
			case dist[i][j] >= 3: // includes disconnected fragments
				s.nbPairs = append(s.nbPairs, [2]int{i, j})
			}
		}
	}
}

// NumAtoms returns the number of mobile (ligand) atoms.
func (s *System) NumAtoms() int { return len(s.mol.Atoms) }

// Mol returns a snapshot of the current ligand geometry.
func (s *System) Mol() *chem.Mol { return s.mol.Clone() }

// PotentialEnergy returns the total potential energy in kcal/mol.
func (s *System) PotentialEnergy() float64 {
	e, _ := s.eval(false)
	return e
}

// Forces returns the force on each mobile atom in kcal/mol/A.
func (s *System) Forces() []chem.Vec3 {
	_, f := s.eval(true)
	return f
}

// EnergyForces returns the potential energy and per-atom forces in one
// evaluation.
func (s *System) EnergyForces() (float64, []chem.Vec3) {
	return s.eval(true)
}

// eval computes the potential energy and, when wantForces is set, the
// analytic forces. Every term is expressed through a scalar function
// of one interatomic distance, so forces follow from dE/dr along the
// pair unit vector.
func (s *System) eval(wantForces bool) (float64, []chem.Vec3) {
	var energy float64
	var forces []chem.Vec3
	if wantForces {
		forces = make([]chem.Vec3, len(s.mol.Atoms))
	}
	addPair := func(i, j int, e, dEdr float64) {
		energy += e
		if forces == nil || dEdr == 0 {
			return
		}
		rij := s.mol.Atoms[j].Pos.Sub(s.mol.Atoms[i].Pos)
		r := rij.Norm()
		if r < 1e-9 {
			return // coincident atoms exert no directional force
		}
		// Force on j is -dE/dr * unit(rij); i gets the reaction.
		fj := rij.Scale(-dEdr / r)
		forces[j] = forces[j].Add(fj)
		forces[i] = forces[i].Sub(fj)
	}

	// Harmonic bonds and 1-3 angle surrogates.
	for _, t := range s.bonds {
		r := s.mol.Atoms[t.a].Pos.Dist(s.mol.Atoms[t.b].Pos)
		addPair(t.a, t.b, bondK*(r-t.r0)*(r-t.r0), 2*bondK*(r-t.r0))
	}
	for _, t := range s.pairs13 {
		r := s.mol.Atoms[t.a].Pos.Dist(s.mol.Atoms[t.b].Pos)
		addPair(t.a, t.b, angleK*(r-t.r0)*(r-t.r0), 2*angleK*(r-t.r0))
	}

	// Intramolecular softcore Lennard-Jones on >=1-4 pairs.
	for _, pr := range s.nbPairs {
		i, j := pr[0], pr[1]
		ei := elementOf(s.mol.Atoms[i].Symbol)
		ej := elementOf(s.mol.Atoms[j].Symbol)
		sigma := (ei.VdwRadius + ej.VdwRadius) * 0.85 // Lorentz-style combining rule
		e, dEdr := softLJ(s.mol.Atoms[i].Pos.Dist(s.mol.Atoms[j].Pos), sigma, intraEps)
		addPair(i, j, e, dEdr)
	}

	// Ligand-pocket field: softcore LJ + screened Coulomb + GB-style
	// desolvation, the smooth analogue of mmgbsa.forceFieldTerms.
	if s.pocket != nil {
		for i := range s.mol.Atoms {
			ai := &s.mol.Atoms[i]
			ei := elementOf(ai.Symbol)
			qi := s.charge[i]
			sigma := (ei.VdwRadius + 1.7) * 0.89
			for _, pa := range s.pocket.Atoms {
				rij := pa.Pos.Sub(ai.Pos)
				r := rij.Norm()
				if r > 12 {
					continue
				}
				qj := pa.Charged*0.8 + pocketHBondCharge(pa)

				e, dEdr := softLJ(r, sigma, interEps)
				ec, dc := softCoulomb(r, qi, qj)
				eg, dg := gbDesolvation(r, qi)
				e += ec + eg
				dEdr += dc + dg

				energy += e
				if forces != nil && r > 1e-9 {
					// Only the ligand atom moves; the pocket is rigid.
					// rij points ligand -> pocket, so F_i = +dE/dr * rij/r.
					forces[i] = forces[i].Add(rij.Scale(dEdr / r))
				}
			}
		}
	}
	return energy, forces
}

// softLJ is the softcore 6-12 potential eps*(s6^2 - 2*s6) with
// s6 = (sigma^2/(r^2+delta))^3, and its derivative dE/dr.
func softLJ(r, sigma, eps float64) (e, dEdr float64) {
	r2 := r*r + softcore
	s2 := sigma * sigma / r2
	s6 := s2 * s2 * s2
	e = eps * (s6*s6 - 2*s6)
	// dE/ds6 = 2*eps*(s6-1) and ds6/dr2 = -3*s6/r2, so
	// dE/dr2 = -6*eps*(s6^2 - s6)/r2; dE/dr = dE/dr2 * 2r.
	dEdr2 := -6 * eps * (s6*s6 - s6) / r2
	dEdr = dEdr2 * 2 * r
	return e, dEdr
}

// softCoulomb is a screened, softcore Coulomb term with the
// distance-dependent dielectric eps(r) = 4r used by the MM/GBSA
// surrogate: E = coulK*qi*qj/(4*(r^2+delta)).
func softCoulomb(r, qi, qj float64) (e, dEdr float64) {
	r2 := r*r + softcore
	e = coulK * qi * qj / (4 * r2)
	dEdr = -coulK * qi * qj / (4 * r2 * r2) * 2 * r
	return e, dEdr
}

// gbDesolvation is the pairwise Generalized-Born-style screening of
// the ligand atom's self-energy: E = -0.5*q^2*exp(-r/6)/(r+1).
func gbDesolvation(r, q float64) (e, dEdr float64) {
	ex := math.Exp(-r / 6)
	e = -0.5 * q * q * ex / (r + 1)
	dEdr = -0.5 * q * q * (-ex/6/(r+1) - ex/((r+1)*(r+1)))
	return e, dEdr
}

func elementOf(sym string) chem.Element {
	if e, ok := chem.Elements[sym]; ok {
		return e
	}
	return chem.Elements["C"]
}

func pocketHBondCharge(pa target.PocketAtom) float64 {
	switch {
	case pa.Donor:
		return 0.2
	case pa.Acceptor:
		return -0.2
	}
	return 0
}

// KineticEnergy returns the kinetic energy in kcal/mol.
func (s *System) KineticEnergy() float64 {
	var ke float64
	for i, v := range s.vel {
		ke += 0.5 * s.mass[i] * v.Dot(v)
	}
	return ke
}

// TotalEnergy returns potential plus kinetic energy in kcal/mol.
func (s *System) TotalEnergy() float64 {
	return s.PotentialEnergy() + s.KineticEnergy()
}

// Temperature returns the instantaneous kinetic temperature in Kelvin
// (zero for systems with no atoms).
func (s *System) Temperature() float64 {
	n := len(s.vel)
	if n == 0 {
		return 0
	}
	dof := 3 * n
	return 2 * s.KineticEnergy() / (float64(dof) * BoltzmannKcal)
}

// InitVelocities draws Maxwell-Boltzmann velocities at tempK, removes
// the center-of-mass drift, and rescales to hit tempK exactly.
func (s *System) InitVelocities(tempK float64) {
	n := len(s.vel)
	if n == 0 || tempK <= 0 {
		for i := range s.vel {
			s.vel[i] = chem.Vec3{}
		}
		return
	}
	for i := range s.vel {
		std := math.Sqrt(BoltzmannKcal * tempK / s.mass[i])
		s.vel[i] = chem.Vec3{
			X: s.rng.NormFloat64() * std,
			Y: s.rng.NormFloat64() * std,
			Z: s.rng.NormFloat64() * std,
		}
	}
	s.removeDrift()
	if t := s.Temperature(); t > 0 {
		scale := math.Sqrt(tempK / t)
		for i := range s.vel {
			s.vel[i] = s.vel[i].Scale(scale)
		}
	}
}

// removeDrift zeroes the center-of-mass momentum.
func (s *System) removeDrift() {
	var p chem.Vec3
	var mTot float64
	for i, v := range s.vel {
		p = p.Add(v.Scale(s.mass[i]))
		mTot += s.mass[i]
	}
	if mTot == 0 {
		return
	}
	drift := p.Scale(1 / mTot)
	for i := range s.vel {
		s.vel[i] = s.vel[i].Sub(drift)
	}
}
