package md

import (
	"deepfusion/internal/chem"
	"deepfusion/internal/dock"
	"deepfusion/internal/target"
)

// Options configures MD pose refinement: a minimization, a simulated
// annealing ramp under the Langevin thermostat, and a final
// minimization — the standard relax-anneal-quench recipe production
// pipelines run between docking and candidate selection.
type Options struct {
	MinimizeSteps int     // steepest-descent budget per minimization
	AnnealSteps   int     // Langevin steps across the temperature ramp
	StartTempK    float64 // annealing start temperature
	EndTempK      float64 // annealing end temperature
	TimestepFs    float64 // integration time step
	FrictionPsInv float64 // Langevin friction
	Seed          int64
}

// Minimization force tolerances (kcal/mol/A). The soft non-bonded
// terms produce per-atom forces of order 0.1-1 kcal/mol/A, so the
// tolerances sit well below that scale.
const (
	minimizeTolCoarse = 0.05
	minimizeTolFine   = 0.02
)

// DefaultOptions returns a short, stable refinement protocol sized for
// screening-scale throughput.
func DefaultOptions() Options {
	return Options{
		MinimizeSteps: 60,
		AnnealSteps:   120,
		StartTempK:    180,
		EndTempK:      20,
		TimestepFs:    1.0,
		FrictionPsInv: 5.0,
		Seed:          1,
	}
}

// RefinePose relaxes a docked pose on the MD force field and returns
// the refined geometry and its final potential energy in kcal/mol.
// The input molecule is not modified.
func RefinePose(p *target.Pocket, mol *chem.Mol, o Options) (*chem.Mol, float64) {
	s := NewSystem(p, mol, o.Seed)
	s.Minimize(o.MinimizeSteps, minimizeTolCoarse)
	// Snapshot the pre-anneal frame: annealing explores, but must never
	// make the returned pose worse than plain minimization.
	snapPos := make([]chem.Vec3, len(s.mol.Atoms))
	for i := range s.mol.Atoms {
		snapPos[i] = s.mol.Atoms[i].Pos
	}
	eSnap := s.PotentialEnergy()
	if o.AnnealSteps > 0 {
		s.InitVelocities(o.StartTempK)
		// Piecewise-constant temperature ramp in four stages.
		const stages = 4
		per := o.AnnealSteps / stages
		for stage := 0; stage < stages; stage++ {
			frac := float64(stage) / float64(stages-1)
			temp := o.StartTempK + (o.EndTempK-o.StartTempK)*frac
			steps := per
			if stage == stages-1 {
				steps = o.AnnealSteps - per*(stages-1)
			}
			s.Langevin(o.TimestepFs, temp, o.FrictionPsInv, steps)
		}
	}
	_, e := s.Minimize(o.MinimizeSteps, minimizeTolFine)
	if e > eSnap {
		// The anneal escaped into a worse basin: quench the snapshot.
		for i := range s.mol.Atoms {
			s.mol.Atoms[i].Pos = snapPos[i]
		}
		_, e = s.Minimize(o.MinimizeSteps, minimizeTolFine)
	}
	return s.Mol(), e
}

// RefineDockPoses applies RefinePose to every docked pose, rescores
// the relaxed geometries with the Vina-style scoring function, and
// returns the poses re-sorted by refined score with ranks reassigned.
// Each pose gets a distinct deterministic seed derived from Options.Seed.
func RefineDockPoses(p *target.Pocket, poses []dock.Pose, o Options) []dock.Pose {
	out := make([]dock.Pose, len(poses))
	for i, ps := range poses {
		po := o
		po.Seed = o.Seed + int64(i)*7919
		mol, _ := RefinePose(p, ps.Mol, po)
		out[i] = dock.Pose{Mol: mol, Score: dock.VinaScore(p, mol)}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Score < out[j-1].Score; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	for i := range out {
		out[i].Rank = i
	}
	return out
}
