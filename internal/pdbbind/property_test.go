package pdbbind

// Property-based tests (testing/quick) for the synthetic PDBbind
// corpus: the quintile split is an exact partition at every size and
// fraction, generation is deterministic, and set-membership rules
// hold for arbitrary corpus sizes.

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuintileSplitIsPartitionProperty(t *testing.T) {
	// For arbitrary corpus sizes and validation fractions, the split
	// must place every complex in exactly one of train/val.
	check := func(nPick, fPick uint, seed int64) bool {
		n := 10 + int(nPick%150)
		frac := 0.05 + float64(fPick%40)/100 // 0.05 .. 0.44
		ds := Generate(Options{
			NGeneral: n, NRefined: n / 2, NCore: 4,
			ValFraction: frac, NumPockets: 4, Seed: seed,
		})
		seen := make(map[string]int)
		for _, c := range ds.Train {
			seen[c.ID]++
		}
		for _, c := range ds.Val {
			seen[c.ID]++
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		total := len(ds.Train) + len(ds.Val)
		if total != n+n/2 {
			return false
		}
		// The realized fraction tracks the request. Quintile rounding
		// can shift up to one complex per quintile per stratum (5
		// quintiles x 2 strata), so the tolerance is size-aware.
		got := float64(len(ds.Val)) / float64(total)
		tol := math.Max(0.12, 10.0/float64(total))
		return math.Abs(got-frac) < tol
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestQuintileSplitCoversAffinityRangeProperty(t *testing.T) {
	// Quintile stratification guarantees the validation set spans the
	// label range: its min and max quintiles are populated whenever the
	// validation set is big enough.
	check := func(seed int64) bool {
		ds := Generate(Options{
			NGeneral: 200, NRefined: 100, NCore: 8,
			ValFraction: 0.2, NumPockets: 4, Seed: seed,
		})
		if len(ds.Val) < 20 {
			return false
		}
		var labels []float64
		for _, c := range ds.Train {
			labels = append(labels, c.Label)
		}
		for _, c := range ds.Val {
			labels = append(labels, c.Label)
		}
		sort.Float64s(labels)
		q1 := labels[len(labels)/4]
		q3 := labels[3*len(labels)/4]
		vLo, vHi := math.Inf(1), math.Inf(-1)
		for _, c := range ds.Val {
			vLo = math.Min(vLo, c.Label)
			vHi = math.Max(vHi, c.Label)
		}
		// Validation draws from every quintile, so it must reach into
		// the bottom and top quartiles of the label distribution.
		return vLo <= q1 && vHi >= q3
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministicProperty(t *testing.T) {
	check := func(seed int64) bool {
		o := Options{NGeneral: 40, NRefined: 20, NCore: 6, ValFraction: 0.15, NumPockets: 4, Seed: seed}
		a, b := Generate(o), Generate(o)
		if len(a.Train) != len(b.Train) || len(a.Val) != len(b.Val) || len(a.Core) != len(b.Core) {
			return false
		}
		for i := range a.Train {
			if a.Train[i].ID != b.Train[i].ID || a.Train[i].Label != b.Train[i].Label {
				return false
			}
		}
		for i := range a.Core {
			if a.Core[i].ID != b.Core[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreSetRulesProperty(t *testing.T) {
	// Core complexes obey the PDBbind core-set filters for arbitrary
	// seeds: every core entry has Ki/Kd measurement (never IC50-only),
	// resolution < 2.5 A, and ligand weight <= 1000 Da.
	check := func(seed int64) bool {
		ds := Generate(Options{NGeneral: 60, NRefined: 30, NCore: 12, ValFraction: 0.1, NumPockets: 4, Seed: seed})
		for _, c := range ds.Core {
			if c.Set != "core" {
				return false
			}
			if c.Measure == MeasureIC50 {
				return false
			}
			if c.Resolution >= 2.5 {
				return false
			}
			if c.Mol.Weight() > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelsWithinPKRangeProperty(t *testing.T) {
	check := func(seed int64) bool {
		ds := Generate(Options{NGeneral: 50, NRefined: 25, NCore: 6, ValFraction: 0.1, NumPockets: 4, Seed: seed})
		for _, group := range [][]*Complex{ds.Train, ds.Val, ds.Core} {
			for _, c := range group {
				if c.Label < 2 || c.Label > 12 || math.IsNaN(c.Label) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
