// Package pdbbind synthesizes a PDBbind-2019-like training corpus: a
// large, noisier "general" set, a curated "refined" set (the paper's
// quality filters: ligand MW <= 1000 Da, Ki/Kd measurements only,
// resolution < 2.5 A), and a held-out "core" benchmark of complexes
// whose compounds appear in no other set. Labels are pK values from
// the target package's planted affinity oracle plus set-dependent
// measurement noise, and the train/validation split uses the quintile
// sub-sampling of the paper so both splits cover the full affinity
// range.
package pdbbind

import (
	"fmt"
	"math/rand"
	"sort"

	"deepfusion/internal/chem"
	"deepfusion/internal/libgen"
	"deepfusion/internal/target"
)

// MeasureKind is the binding measurement type of a complex. The
// refined set excludes IC50-only entries.
type MeasureKind int

// Measurement kinds (Equation 1: pK with K = Ki, Kd or IC50).
const (
	MeasureKi MeasureKind = iota
	MeasureKd
	MeasureIC50
)

// String names the measurement.
func (m MeasureKind) String() string {
	switch m {
	case MeasureKi:
		return "Ki"
	case MeasureKd:
		return "Kd"
	default:
		return "IC50"
	}
}

// Complex is one protein-ligand crystal structure with its binding
// affinity label.
type Complex struct {
	ID         string
	Pocket     *target.Pocket
	Mol        *chem.Mol // ligand posed in the pocket frame
	Label      float64   // pK = -log10 K
	Set        string    // "general", "refined" or "core"
	Measure    MeasureKind
	Resolution float64 // crystal resolution in Angstroms
}

// Dataset is the generated corpus after quintile splitting.
type Dataset struct {
	Train []*Complex
	Val   []*Complex
	Core  []*Complex
}

// Options sizes the corpus. The real PDBbind-2019 splits are 15,631
// train / 1,731 validation / 290 core; defaults scale those by ~20x
// down while keeping the core at a meaningful size.
type Options struct {
	NGeneral    int
	NRefined    int
	NCore       int
	ValFraction float64
	NumPockets  int // synthetic pocket pool size (protein diversity)
	Seed        int64
}

// DefaultOptions returns the repro-scale corpus configuration.
func DefaultOptions() Options {
	return Options{NGeneral: 520, NRefined: 260, NCore: 64, ValFraction: 0.10, NumPockets: 10, Seed: 20190101}
}

// Generate builds the corpus. Core compounds are disjoint from
// general/refined compounds by construction (distinct generator
// stream), mirroring the clustering-based separation of the real core
// set.
func Generate(o Options) *Dataset {
	if o.ValFraction <= 0 || o.ValFraction >= 1 {
		panic("pdbbind: ValFraction must be in (0,1)")
	}
	rng := rand.New(rand.NewSource(o.Seed))
	pockets := pocketPool(o.NumPockets, rng.Int63())

	profile := libgen.Profile{MinFragments: 1, MaxFragments: 4, AromaticBias: 0.7, HeteroBias: 0.5, ChainBias: 0.4}

	gen := make([]*Complex, 0, o.NGeneral)
	for i := 0; len(gen) < o.NGeneral; i++ {
		c := synthComplex(fmt.Sprintf("GEN%05d", i), rng, pockets, profile, "general")
		if c != nil {
			gen = append(gen, c)
		}
	}
	ref := make([]*Complex, 0, o.NRefined)
	for i := 0; len(ref) < o.NRefined; i++ {
		c := synthComplex(fmt.Sprintf("REF%05d", i), rng, pockets, profile, "refined")
		if c != nil && passesRefinedFilters(c) {
			ref = append(ref, c)
		}
	}
	core := make([]*Complex, 0, o.NCore)
	for i := 0; len(core) < o.NCore; i++ {
		c := synthComplex(fmt.Sprintf("CORE%04d", i), rng, pockets, profile, "core")
		if c != nil && passesRefinedFilters(c) {
			core = append(core, c)
		}
	}

	ds := &Dataset{Core: core}
	trainG, valG := QuintileSplit(gen, o.ValFraction, rng.Int63())
	trainR, valR := QuintileSplit(ref, o.ValFraction, rng.Int63())
	ds.Train = append(append(ds.Train, trainG...), trainR...)
	ds.Val = append(append(ds.Val, valG...), valR...)
	return ds
}

// pocketPool returns the 4 screening targets plus generated pockets.
func pocketPool(n int, seed int64) []*target.Pocket {
	pockets := target.All()
	for i := len(pockets); i < n; i++ {
		pockets = append(pockets, target.Synthetic(fmt.Sprintf("synth%02d", i), seed+int64(i)))
	}
	return pockets
}

func synthComplex(id string, rng *rand.Rand, pockets []*target.Pocket, profile libgen.Profile, set string) *Complex {
	smiles := libgen.RandomSMILES(rng, profile)
	m, err := chem.ParseSMILES(smiles)
	if err != nil {
		return nil
	}
	m.Name = id
	prepared, err := chem.Prepare(m, rng.Int63())
	if err != nil {
		return nil
	}
	prepared.Name = id
	p := pockets[rng.Intn(len(pockets))]
	p.PlaceLigand(prepared)
	// Small crystal-pose jitter so the ligand is not perfectly centered.
	prepared.Translate(chem.Vec3{
		X: rng.NormFloat64() * 0.5,
		Y: rng.NormFloat64() * 0.5,
		Z: rng.NormFloat64() * 0.5,
	})
	truth := p.TrueAffinity(prepared)
	c := &Complex{
		ID:         id,
		Pocket:     p,
		Mol:        prepared,
		Set:        set,
		Measure:    MeasureKind(rng.Intn(3)),
		Resolution: 1.2 + rng.Float64()*2.3, // 1.2 - 3.5 A
	}
	// Measurement noise: general entries are noisier than curated ones.
	noise := 0.45
	if set != "general" {
		noise = 0.22
	}
	c.Label = clampPK(truth + rng.NormFloat64()*noise)
	return c
}

func passesRefinedFilters(c *Complex) bool {
	if c.Mol.Weight() > 1000 {
		return false
	}
	if c.Measure == MeasureIC50 {
		return false
	}
	return c.Resolution < 2.5
}

func clampPK(v float64) float64 {
	if v < 2 {
		return 2
	}
	if v > 12 {
		return 12
	}
	return v
}

// QuintileSplit withdraws valFraction of the complexes into a
// validation set, sampling uniformly from each label quintile so both
// splits span the whole affinity range (the paper's guard against
// training and validating on different affinity sub-spaces).
func QuintileSplit(cs []*Complex, valFraction float64, seed int64) (train, val []*Complex) {
	if len(cs) == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	sorted := append([]*Complex(nil), cs...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Label < sorted[b].Label })
	q := (len(sorted) + 4) / 5
	for lo := 0; lo < len(sorted); lo += q {
		hi := lo + q
		if hi > len(sorted) {
			hi = len(sorted)
		}
		quintile := append([]*Complex(nil), sorted[lo:hi]...)
		rng.Shuffle(len(quintile), func(i, j int) { quintile[i], quintile[j] = quintile[j], quintile[i] })
		nVal := int(float64(len(quintile))*valFraction + 0.5)
		val = append(val, quintile[:nVal]...)
		train = append(train, quintile[nVal:]...)
	}
	return train, val
}

// Labels extracts the label vector of a complex list.
func Labels(cs []*Complex) []float64 {
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = c.Label
	}
	return out
}
