package pdbbind

import (
	"math"
	"sort"
	"testing"
)

func smallOptions() Options {
	return Options{NGeneral: 80, NRefined: 40, NCore: 16, ValFraction: 0.10, NumPockets: 6, Seed: 7}
}

func TestGenerateSizes(t *testing.T) {
	o := smallOptions()
	ds := Generate(o)
	if len(ds.Core) != o.NCore {
		t.Fatalf("core = %d, want %d", len(ds.Core), o.NCore)
	}
	total := len(ds.Train) + len(ds.Val)
	if total != o.NGeneral+o.NRefined {
		t.Fatalf("train+val = %d, want %d", total, o.NGeneral+o.NRefined)
	}
	// Validation should be ~10%.
	frac := float64(len(ds.Val)) / float64(total)
	if frac < 0.07 || frac > 0.14 {
		t.Fatalf("val fraction = %v, want ~0.10", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallOptions())
	b := Generate(smallOptions())
	if len(a.Train) != len(b.Train) {
		t.Fatal("train size differs across runs")
	}
	for i := range a.Train {
		if a.Train[i].ID != b.Train[i].ID || a.Train[i].Label != b.Train[i].Label {
			t.Fatal("dataset not deterministic")
		}
	}
}

func TestLabelsInRange(t *testing.T) {
	ds := Generate(smallOptions())
	for _, set := range [][]*Complex{ds.Train, ds.Val, ds.Core} {
		for _, c := range set {
			if c.Label < 2 || c.Label > 12 {
				t.Fatalf("%s label %v outside [2,12]", c.ID, c.Label)
			}
		}
	}
}

func TestLabelsCorrelateWithOracle(t *testing.T) {
	// Labels are oracle + noise; they must track the oracle strongly.
	ds := Generate(smallOptions())
	var num, da, db float64
	var ma, mb float64
	oracle := make([]float64, len(ds.Train))
	labels := make([]float64, len(ds.Train))
	for i, c := range ds.Train {
		oracle[i] = c.Pocket.TrueAffinity(c.Mol)
		labels[i] = c.Label
		ma += oracle[i]
		mb += labels[i]
	}
	n := float64(len(oracle))
	ma /= n
	mb /= n
	for i := range oracle {
		num += (oracle[i] - ma) * (labels[i] - mb)
		da += (oracle[i] - ma) * (oracle[i] - ma)
		db += (labels[i] - mb) * (labels[i] - mb)
	}
	r := num / math.Sqrt(da*db)
	if r < 0.8 {
		t.Fatalf("label/oracle correlation = %v, want > 0.8", r)
	}
}

func TestRefinedFilters(t *testing.T) {
	ds := Generate(smallOptions())
	for _, c := range append(append([]*Complex{}, ds.Core...), refinedOf(ds)...) {
		if c.Measure == MeasureIC50 {
			t.Fatalf("%s: IC50 entry in refined/core", c.ID)
		}
		if c.Resolution >= 2.5 {
			t.Fatalf("%s: resolution %v in refined/core", c.ID, c.Resolution)
		}
		if c.Mol.Weight() > 1000 {
			t.Fatalf("%s: MW %v in refined/core", c.ID, c.Mol.Weight())
		}
	}
}

func refinedOf(ds *Dataset) []*Complex {
	var out []*Complex
	for _, c := range append(append([]*Complex{}, ds.Train...), ds.Val...) {
		if c.Set == "refined" {
			out = append(out, c)
		}
	}
	return out
}

func TestGeneralSetMayContainIC50(t *testing.T) {
	ds := Generate(Options{NGeneral: 150, NRefined: 10, NCore: 5, ValFraction: 0.1, NumPockets: 5, Seed: 11})
	found := false
	for _, c := range append(append([]*Complex{}, ds.Train...), ds.Val...) {
		if c.Set == "general" && c.Measure == MeasureIC50 {
			found = true
		}
	}
	if !found {
		t.Fatal("general set should retain IC50 entries (they are equivalent labels)")
	}
}

func TestCoreDisjointFromTrain(t *testing.T) {
	ds := Generate(smallOptions())
	ids := map[string]bool{}
	for _, c := range ds.Core {
		ids[c.ID] = true
	}
	for _, c := range append(append([]*Complex{}, ds.Train...), ds.Val...) {
		if ids[c.ID] {
			t.Fatalf("core complex %s leaked into train/val", c.ID)
		}
	}
}

func TestQuintileSplitCoversRange(t *testing.T) {
	ds := Generate(Options{NGeneral: 300, NRefined: 0, NCore: 1, ValFraction: 0.1, NumPockets: 5, Seed: 3})
	// Validation must include at least one sample from the lowest and
	// highest label quintiles of the combined data.
	all := append(append([]*Complex{}, ds.Train...), ds.Val...)
	labels := Labels(all)
	sort.Float64s(labels)
	loCut := labels[len(labels)/5]   // top of bottom count-quintile
	hiCut := labels[len(labels)*4/5] // bottom of top count-quintile
	hasLow, hasHigh := false, false
	for _, c := range ds.Val {
		if c.Label <= loCut {
			hasLow = true
		}
		if c.Label >= hiCut {
			hasHigh = true
		}
	}
	if !hasLow || !hasHigh {
		t.Fatalf("validation set missing label extremes (low=%v high=%v)", hasLow, hasHigh)
	}
}

func TestQuintileSplitPartition(t *testing.T) {
	ds := Generate(smallOptions())
	train, val := QuintileSplit(ds.Train, 0.2, 5)
	if len(train)+len(val) != len(ds.Train) {
		t.Fatal("split lost complexes")
	}
	seen := map[string]int{}
	for _, c := range train {
		seen[c.ID]++
	}
	for _, c := range val {
		seen[c.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("complex %s appears %d times after split", id, n)
		}
	}
}

func TestQuintileSplitEmpty(t *testing.T) {
	train, val := QuintileSplit(nil, 0.1, 1)
	if train != nil || val != nil {
		t.Fatal("empty split should return nils")
	}
}

func TestBadValFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Options{NGeneral: 1, NRefined: 1, NCore: 1, ValFraction: 0, NumPockets: 4, Seed: 1})
}

func TestMeasureString(t *testing.T) {
	if MeasureKi.String() != "Ki" || MeasureKd.String() != "Kd" || MeasureIC50.String() != "IC50" {
		t.Fatal("measurement names")
	}
}

func TestLabelsHelper(t *testing.T) {
	ds := Generate(smallOptions())
	ls := Labels(ds.Core)
	if len(ls) != len(ds.Core) {
		t.Fatal("labels length")
	}
	for i := range ls {
		if ls[i] != ds.Core[i].Label {
			t.Fatal("labels mismatch")
		}
	}
}

func TestLigandPosedInPocket(t *testing.T) {
	ds := Generate(smallOptions())
	for _, c := range ds.Core {
		d := c.Mol.Centroid().Norm()
		if d > 5 {
			t.Fatalf("%s ligand centroid %v A from pocket center", c.ID, d)
		}
	}
}

func TestLabelDiversity(t *testing.T) {
	ds := Generate(smallOptions())
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range ds.Train {
		if c.Label < lo {
			lo = c.Label
		}
		if c.Label > hi {
			hi = c.Label
		}
	}
	if hi-lo < 2.5 {
		t.Fatalf("label range only %v pK units; oracle too flat for training", hi-lo)
	}
}

func TestPocketPoolContainsScreeningTargets(t *testing.T) {
	ds := Generate(smallOptions())
	names := map[string]bool{}
	for _, c := range append(append([]*Complex{}, ds.Train...), ds.Core...) {
		names[c.Pocket.Name] = true
	}
	// The four screening targets participate in the corpus (so models
	// see them during training, as PDBbind contains SARS-CoV proteases).
	found := 0
	for _, n := range []string{"protease1", "protease2", "spike1", "spike2"} {
		if names[n] {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no screening target present in the corpus pocket pool")
	}
}

func TestComplexIDsUnique(t *testing.T) {
	ds := Generate(smallOptions())
	seen := map[string]bool{}
	for _, c := range append(append(append([]*Complex{}, ds.Train...), ds.Val...), ds.Core...) {
		if seen[c.ID] {
			t.Fatalf("duplicate complex ID %s", c.ID)
		}
		seen[c.ID] = true
	}
}
