package mmgbsa

import (
	"math"
	"math/rand"
	"testing"

	"deepfusion/internal/chem"
	"deepfusion/internal/libgen"
	"deepfusion/internal/metrics"
	"deepfusion/internal/target"
)

func mustMol(t *testing.T, s, name string) *chem.Mol {
	t.Helper()
	m, err := chem.ParseSMILES(s)
	if err != nil {
		t.Fatal(err)
	}
	m.Name = name
	chem.Embed3D(m, 5)
	return m
}

func TestRescoreFiniteDeterministic(t *testing.T) {
	m := mustMol(t, "CC(=O)Oc1ccccc1C(=O)O", "asp")
	target.Protease1.PlaceLigand(m)
	a := Rescore(target.Protease1, m)
	if a != Rescore(target.Protease1, m) {
		t.Fatal("Rescore not deterministic")
	}
	if math.IsNaN(a) || math.IsInf(a, 0) {
		t.Fatalf("Rescore = %v", a)
	}
}

func TestRescorePrefersPocket(t *testing.T) {
	smiles := []string{"c1ccccc1CCN", "CC(=O)Oc1ccccc1C(=O)O", "c1ccc2ccccc2c1", "CCCCCCC", "NCCO"}
	better := 0
	for _, s := range smiles {
		m := mustMol(t, s, s)
		target.Protease1.PlaceLigand(m)
		in := Rescore(target.Protease1, m)
		m.Translate(chem.Vec3{X: 60})
		out := Rescore(target.Protease1, m)
		if in < out {
			better++
		}
	}
	if better < 4 {
		t.Fatalf("pocket poses better for only %d/5 compounds", better)
	}
}

func TestThroughputConstants(t *testing.T) {
	// Paper Section 4.1: Vina ~10 poses/s/node, MM/GBSA ~0.067.
	if VinaPosesPerSecPerNode != 10.0 {
		t.Fatal("Vina throughput constant drifted from paper value")
	}
	if MMGBSAPosesPerSecPerNode != 0.067 {
		t.Fatal("MM/GBSA throughput constant drifted from paper value")
	}
	ratio := VinaPosesPerSecPerNode / MMGBSAPosesPerSecPerNode
	if ratio < 100 {
		t.Fatalf("cost ratio %v; MM/GBSA must be orders of magnitude slower", ratio)
	}
}

func testCompounds(t *testing.T, n int) []*chem.Mol {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	p := libgen.Profile{MinFragments: 1, MaxFragments: 4, AromaticBias: 0.7, HeteroBias: 0.5, ChainBias: 0.4}
	var mols []*chem.Mol
	for i := 0; len(mols) < n; i++ {
		s := libgen.RandomSMILES(rng, p)
		m, err := chem.ParseSMILES(s)
		if err != nil {
			continue
		}
		m.Name = s
		prep, err := chem.Prepare(m, int64(i))
		if err != nil {
			continue
		}
		prep.Name = s
		mols = append(mols, prep)
	}
	return mols
}

func TestAMPLFitPredict(t *testing.T) {
	mols := testCompounds(t, 60)
	a := NewAMPL(target.Protease1)
	if a.Fitted() {
		t.Fatal("fresh AMPL must be unfitted")
	}
	if err := a.Fit(mols[:40]); err != nil {
		t.Fatal(err)
	}
	if !a.Fitted() {
		t.Fatal("Fit did not mark model fitted")
	}
	// Surrogate must correlate with real MM/GBSA on held-out compounds.
	var pred, truth []float64
	for _, m := range mols[40:] {
		posed := m.Clone()
		target.Protease1.PlaceLigand(posed)
		pred = append(pred, a.Predict(m))
		truth = append(truth, Rescore(target.Protease1, posed))
	}
	if r := metrics.Pearson(pred, truth); r < 0.4 {
		t.Fatalf("AMPL held-out correlation %v, want > 0.4", r)
	}
}

func TestAMPLTooFewCompounds(t *testing.T) {
	a := NewAMPL(target.Spike1)
	if err := a.Fit(testCompounds(t, 4)); err == nil {
		t.Fatal("Fit must reject tiny training sets")
	}
}

func TestAMPLPredictBeforeFitPanics(t *testing.T) {
	a := NewAMPL(target.Spike1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Predict(mustMol(t, "CCO", "eth"))
}

func TestSolveGaussian(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	w, err := solveGaussian(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
	if math.Abs(w[0]-1) > 1e-9 || math.Abs(w[1]-3) > 1e-9 {
		t.Fatalf("solution %v", w)
	}
}

func TestSolveGaussianSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if _, err := solveGaussian(a, b); err == nil {
		t.Fatal("singular system must error")
	}
}

// Calibration guard: both physics scores must carry real signal about
// the planted truth, with MM/GBSA at least as correlated as Vina tends
// to be (checked properly at the bench level on docked poses).
func TestPhysicsScoresTrackOracle(t *testing.T) {
	mols := testCompounds(t, 80)
	var truth, gb []float64
	for _, m := range mols {
		posed := m.Clone()
		target.Protease1.PlaceLigand(posed)
		truth = append(truth, target.Protease1.TrueAffinity(posed))
		gb = append(gb, -Rescore(target.Protease1, posed)) // negate: lower energy = stronger
	}
	if r := metrics.Pearson(gb, truth); r < 0.25 {
		t.Fatalf("MM/GBSA carries almost no signal: r = %v", r)
	}
}
