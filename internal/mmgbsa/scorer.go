package mmgbsa

import "deepfusion/internal/fusion"

// Scorer adapts the MM/GBSA single-point rescorer to the screening
// engine's scoring contract: the physics rescoring stage of the
// paper's funnel, runnable at scale on the same batched engine as the
// deep models. It reads the raw posed complex off the shared Sample
// (no Featurizer handshake) and is stateless, so ranks share one
// instance.
type Scorer struct{}

// Name identifies the MM/GBSA surrogate in shard columns and
// manifests.
func (Scorer) Name() string { return "mmgbsa" }

// ScoreBatch evaluates the MM/GBSA single-point binding energy of each
// posed complex, in kcal/mol (lower is stronger).
func (Scorer) ScoreBatch(samples []*fusion.Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = Rescore(s.Pocket, s.Mol)
	}
	return out
}

// LowerIsBetter reports the kcal/mol orientation.
func (Scorer) LowerIsBetter() bool { return true }
