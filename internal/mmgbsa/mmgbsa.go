// Package mmgbsa implements the Molecular Mechanics / Generalized Born
// Surface Area rescoring substrate: a force-field-style single-point
// energy decomposition of a docked pose (van der Waals, Coulomb,
// GB solvation, SASA) and the AMPL machine-learned surrogate the paper
// substitutes for full MM/GBSA at screening scale.
//
// Relative cost matches the paper's measurements: MM/GBSA is ~2.5
// orders of magnitude slower than Vina docking (0.067 vs 10 poses per
// second per node); the cluster simulator consumes these constants.
package mmgbsa

import (
	"math"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// Throughput constants from paper Section 4.1 (per Lassen node).
const (
	VinaPosesPerSecPerNode   = 10.0
	MMGBSAPosesPerSecPerNode = 0.067
)

// mmgbsaBias is the GB/SA surrogate's systematic error profile:
// better-balanced electrostatics and hydrogen-bond chemistry than
// Vina, with slightly smaller per-compound noise, matching the
// paper's slightly better docking-space correlation (0.591 vs 0.579).
var mmgbsaBias = target.MethodBias{
	Tag:     "mmgbsa",
	Contact: 0.95, Hydro: 0.90, HBond: 0.95, Arom: 0.85, Rot: 0.80, Charge: 1.15,
	Noise: 0.58,
}

// kcalPerPK converts pK units to kcal/mol at ~300 K.
const kcalPerPK = 1.36

// Rescore computes the MM/GBSA-style single-point binding energy of
// mol posed in the pocket frame, in kcal/mol (more negative is
// better). It combines the force-field single-point terms with the
// method's biased view of the planted affinity surface.
func Rescore(p *target.Pocket, mol *chem.Mol) float64 {
	return -kcalPerPK*p.BiasedAffinity(mol, mmgbsaBias) + 0.10*forceFieldTerms(p, mol)
}

// forceFieldTerms is the MM + GB + SA single-point decomposition,
// retained at reduced weight for pose sensitivity.
func forceFieldTerms(p *target.Pocket, mol *chem.Mol) float64 {
	var vdw, coul, gb float64
	for _, a := range mol.Atoms {
		ea, ok := chem.Elements[a.Symbol]
		if !ok {
			continue
		}
		qa := float64(a.Charge)*0.8 + (ea.EN-2.5)*0.15 // crude partial charge
		for _, pa := range p.Atoms {
			d := a.Pos.Dist(pa.Pos)
			if d > 10 {
				continue
			}
			if d < 0.5 {
				d = 0.5
			}
			// Lennard-Jones 6-12 with generic parameters.
			sigma := (ea.VdwRadius + 1.7) * 0.89
			sr6 := math.Pow(sigma/d, 6)
			// Cap the repulsive wall: single-point rescoring of imperfect
			// docked poses must not let one clashed pair dominate the
			// energy (production MM/GBSA minimizes before scoring).
			pair := 0.15 * (sr6*sr6 - 2*sr6)
			if pair > 5 {
				pair = 5
			}
			vdw += pair
			// Coulomb with distance-dependent dielectric eps = 4r.
			qb := pa.Charged*0.8 + hbondCharge(pa)
			coul += 332.0 * qa * qb / (4 * d * d)
			// GB-style pairwise screening of the desolvation cost.
			gb += -0.5 * qa * qa * math.Exp(-d/6) / (d + 1)
		}
	}
	return vdw + coul + gb + sasaTerm(mol)
}

func hbondCharge(pa target.PocketAtom) float64 {
	switch {
	case pa.Donor:
		return 0.2
	case pa.Acceptor:
		return -0.2
	}
	return 0
}

// sasaTerm approximates the hydrophobic burial reward: each ligand
// heavy atom near the pocket wall contributes favorably, scaled by a
// per-atom surface tension.
func sasaTerm(mol *chem.Mol) float64 {
	buried := 0
	for _, a := range mol.Atoms {
		if a.Pos.Norm() < 9 {
			buried++
		}
	}
	return -0.1 * float64(buried)
}
