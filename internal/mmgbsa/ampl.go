package mmgbsa

import (
	"fmt"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// AMPL is the ATOM Modeling PipeLine surrogate: a per-target ridge
// regression over ligand descriptors trained to predict MM/GBSA
// scores, used in the paper's retrospective analysis because full
// MM/GBSA on every tested compound was too expensive. The paper cites
// the surrogate as "highly correlated with actual MM/GBSA
// calculations".
type AMPL struct {
	Target *target.Pocket
	w      []float64 // descriptor weights + bias (last)
	fitted bool
}

// NewAMPL creates an untrained surrogate for the given target.
func NewAMPL(t *target.Pocket) *AMPL { return &AMPL{Target: t} }

const amplFeatures = 8

func amplFeaturize(m *chem.Mol) []float64 {
	d := chem.ComputeDescriptors(m)
	return []float64{
		d.MolWeight / 300,
		d.LogP,
		float64(d.HBondDonors),
		float64(d.HBondAcceptors),
		d.TPSA / 50,
		float64(d.RotatableBonds),
		float64(d.Rings),
		float64(d.NetCharge),
	}
}

// Fit trains the surrogate by running the real MM/GBSA rescorer on the
// provided training compounds (posed copies centered in the pocket)
// and solving the ridge-regularized normal equations.
func (a *AMPL) Fit(train []*chem.Mol) error {
	if len(train) < amplFeatures+1 {
		return fmt.Errorf("mmgbsa: AMPL needs at least %d training compounds, got %d", amplFeatures+1, len(train))
	}
	n := len(train)
	dim := amplFeatures + 1
	x := make([][]float64, n)
	y := make([]float64, n)
	for i, m := range train {
		posed := m.Clone()
		a.Target.PlaceLigand(posed)
		feats := amplFeaturize(m)
		x[i] = append(feats, 1) // bias
		y[i] = Rescore(a.Target, posed)
	}
	// Normal equations with ridge lambda.
	const lambda = 1e-2
	ata := make([][]float64, dim)
	atb := make([]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
		ata[i][i] = lambda
	}
	for s := 0; s < n; s++ {
		for i := 0; i < dim; i++ {
			atb[i] += x[s][i] * y[s]
			for j := 0; j < dim; j++ {
				ata[i][j] += x[s][i] * x[s][j]
			}
		}
	}
	w, err := solveGaussian(ata, atb)
	if err != nil {
		return err
	}
	a.w = w
	a.fitted = true
	return nil
}

// Predict returns the surrogate MM/GBSA score for a compound (pose-
// independent, as AMPL predicts from 2D descriptors). It panics if the
// surrogate is not fitted.
func (a *AMPL) Predict(m *chem.Mol) float64 {
	if !a.fitted {
		panic("mmgbsa: AMPL.Predict before Fit")
	}
	feats := append(amplFeaturize(m), 1)
	s := 0.0
	for i, f := range feats {
		s += a.w[i] * f
	}
	return s
}

// Fitted reports whether Fit has succeeded.
func (a *AMPL) Fitted() bool { return a.fitted }

// solveGaussian solves the dense linear system A w = b in place with
// partial pivoting.
func solveGaussian(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// pivot
		p := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[p][col]) {
				p = r
			}
		}
		if abs(a[p][col]) < 1e-12 {
			return nil, fmt.Errorf("mmgbsa: singular normal equations at column %d", col)
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	w := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * w[c]
		}
		w[r] = s / a[r][r]
	}
	return w, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
