// Package featurize converts posed protein-ligand complexes into the
// two model input representations of the Deep Fusion architecture: a
// voxelized Euclidean grid for the 3D-CNN and a spatial graph with
// covalent and non-covalent edge types for the SG-CNN.
package featurize

import (
	"math"
	"math/rand"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

// VoxelOptions configures the grid representation. The paper used a
// 48^3 grid with 19 channels; the repro default is a coarser 8^3 grid
// with 16 channels (8 ligand + 8 protein) so the full pipeline trains
// in seconds rather than GPU-hours. The code path is identical.
type VoxelOptions struct {
	GridSize   int     // voxels per axis
	Resolution float64 // Angstroms per voxel
	Sigma      float64 // Gaussian atom splat width, in voxels
}

// DefaultVoxelOptions returns the repro-scale grid configuration.
func DefaultVoxelOptions() VoxelOptions {
	return VoxelOptions{GridSize: 8, Resolution: 3.0, Sigma: 0.8}
}

// PaperVoxelOptions returns the grid at the scale of the original FAST
// models (48 voxels per axis at 1 A resolution; the paper's 19 atom
// channels map onto this package's 16 ligand+protein channels). Every
// code path is identical to the repro default — only memory and time
// grow by ~200x per pose.
func PaperVoxelOptions() VoxelOptions {
	return VoxelOptions{GridSize: 48, Resolution: 1.0, Sigma: 1.0}
}

// Channels returns the number of voxel channels (ligand + protein).
func (o VoxelOptions) Channels() int { return 2 * chem.FeatureChannels }

// Voxelize renders the complex (ligand posed in the pocket frame) into
// a [C, N, N, N] tensor. Ligand atoms populate channels
// [0, FeatureChannels) and pocket pseudo-atoms populate
// [FeatureChannels, 2*FeatureChannels). Each atom is splatted with a
// truncated Gaussian over its 27-voxel neighborhood.
//
// The donor/acceptor channels (5, 6) are intentionally left empty in
// the grid: at the repro grid resolution (3 A/voxel) hydrogen-bond
// geometry is sub-voxel, so the Euclidean representation cannot carry
// it faithfully — that chemistry reaches the models through the
// SG-CNN's typed graph instead. This is what gives the two heads the
// complementary strengths fusion exploits (shape/occupancy vs bonded
// chemistry), mirroring the premise of the paper's Section 1.
func Voxelize(p *target.Pocket, mol *chem.Mol, o VoxelOptions) *tensor.Tensor {
	return VoxelizeInto(nil, p, mol, o)
}

// VoxelizeInto renders the complex into dst, reusing its buffer when
// it already has the right element count ([C, N, N, N] for the given
// options) and allocating a fresh grid otherwise (including dst ==
// nil). It returns the tensor written, which is dst whenever dst was
// reusable. The grid is zeroed before splatting, so results are
// identical to Voxelize — this is the caller-buffer entry point the
// screening loaders recycle pose slots through.
func VoxelizeInto(dst *tensor.Tensor, p *target.Pocket, mol *chem.Mol, o VoxelOptions) *tensor.Tensor {
	n := o.GridSize
	out := dst
	if out == nil || out.Len() != o.Channels()*n*n*n {
		out = tensor.New(o.Channels(), n, n, n)
	} else {
		out.Shape = append(out.Shape[:0], o.Channels(), n, n, n)
		out.Zero()
	}
	half := float64(n) * o.Resolution / 2
	for _, a := range mol.Atoms {
		splat(out.Data, 0, ligandChannels(&a), a.Pos, half, o, nil)
	}
	for i := range p.Atoms {
		splat(out.Data, chem.FeatureChannels, pocketChannels(&p.Atoms[i]), p.Atoms[i].Pos, half, o, nil)
	}
	return out
}

// ligandChannels returns the voxel channel weights of one ligand atom
// with the grid-suppressed H-bond channels (5, 6) cleared (see the
// Voxelize doc comment).
func ligandChannels(a *chem.Atom) [chem.FeatureChannels]float64 {
	ch := chem.AtomChannels(a.Symbol, a.Charge, a.Aromatic)
	ch[5], ch[6] = 0, 0 // H-bond chemistry: graph-only (see above)
	return ch
}

// pocketChannels returns the voxel channel weights of one pocket
// pseudo-atom — shared by the per-pose splat and the prefeature's
// once-per-target pocket baseline, so the two paths stay bit-equal.
func pocketChannels(pa *target.PocketAtom) [chem.FeatureChannels]float64 {
	var ch [chem.FeatureChannels]float64
	if pa.Hydrophobic {
		ch[0] = 1
	}
	ch[7] = pa.Charged
	ch[3] = 1 // generic heavy-atom presence channel for the protein
	return ch
}

// splat renders one atom's truncated Gaussian into the flat [C,N,N,N]
// grid data starting at channel chOffset. When touched is non-nil,
// every in-bounds voxel offset (linear within one N^3 channel) of the
// atom's footprint is appended to it — recording happens in the same
// traversal as the writes, so the footprint can never drift out of
// sync with the splat kernel; the prefeature path zeroes exactly these
// offsets across the ligand channels to restore a recycled grid to the
// pocket baseline.
func splat(data []float64, chOffset int, ch [chem.FeatureChannels]float64, pos chem.Vec3, half float64, o VoxelOptions, touched *[]int32) {
	n := o.GridSize
	// Continuous voxel coordinates of the atom.
	vx := (pos.X + half) / o.Resolution
	vy := (pos.Y + half) / o.Resolution
	vz := (pos.Z + half) / o.Resolution
	cx, cy, cz := int(math.Floor(vx)), int(math.Floor(vy)), int(math.Floor(vz))
	inv2s2 := 1 / (2 * o.Sigma * o.Sigma)
	for dx := -1; dx <= 1; dx++ {
		x := cx + dx
		if x < 0 || x >= n {
			continue
		}
		for dy := -1; dy <= 1; dy++ {
			y := cy + dy
			if y < 0 || y >= n {
				continue
			}
			for dz := -1; dz <= 1; dz++ {
				z := cz + dz
				if z < 0 || z >= n {
					continue
				}
				if touched != nil {
					*touched = append(*touched, int32((x*n+y)*n+z))
				}
				ddx := vx - (float64(x) + 0.5)
				ddy := vy - (float64(y) + 0.5)
				ddz := vz - (float64(z) + 0.5)
				w := math.Exp(-(ddx*ddx + ddy*ddy + ddz*ddz) * inv2s2)
				for c, v := range ch {
					if v == 0 {
						continue
					}
					i := (((chOffset+c)*n+x)*n+y)*n + z
					data[i] += v * w
				}
			}
		}
	}
}

// RotationAxis selects the axis for RandomRotate.
type RotationAxis int

// Rotation axes.
const (
	AxisX RotationAxis = iota
	AxisY
	AxisZ
)

// Rotate90 rotates the molecule's coordinates by 90 degrees about the
// given axis through the origin, in place.
func Rotate90(m *chem.Mol, axis RotationAxis) {
	for i := range m.Atoms {
		p := m.Atoms[i].Pos
		switch axis {
		case AxisX:
			m.Atoms[i].Pos = chem.Vec3{X: p.X, Y: -p.Z, Z: p.Y}
		case AxisY:
			m.Atoms[i].Pos = chem.Vec3{X: p.Z, Y: p.Y, Z: -p.X}
		case AxisZ:
			m.Atoms[i].Pos = chem.Vec3{X: -p.Y, Y: p.X, Z: p.Z}
		}
	}
}

// RandomRotate applies the paper's training-time augmentation to a
// copy of mol: a 90-degree rotation about each of X, Y and Z, each
// applied independently with probability 0.10. The input is not
// modified. Augmentation applies only to the voxelized representation,
// so callers rotate before Voxelize and leave the graph input alone.
func RandomRotate(m *chem.Mol, rng *rand.Rand) *chem.Mol {
	out := m.Clone()
	for _, axis := range []RotationAxis{AxisX, AxisY, AxisZ} {
		if rng.Float64() < 0.10 {
			Rotate90(out, axis)
		}
	}
	return out
}
