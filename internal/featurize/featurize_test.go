package featurize

import (
	"math"
	"math/rand"
	"testing"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

func mustMol(t *testing.T, s string) *chem.Mol {
	t.Helper()
	m, err := chem.ParseSMILES(s)
	if err != nil {
		t.Fatal(err)
	}
	chem.Embed3D(m, 3)
	return m
}

func TestVoxelizeShape(t *testing.T) {
	o := DefaultVoxelOptions()
	m := mustMol(t, "CCO")
	target.Protease1.PlaceLigand(m)
	v := Voxelize(target.Protease1, m, o)
	want := []int{o.Channels(), o.GridSize, o.GridSize, o.GridSize}
	for i, d := range want {
		if v.Dim(i) != d {
			t.Fatalf("shape %v, want %v", v.Shape, want)
		}
	}
}

func TestVoxelizeLigandAndProteinChannels(t *testing.T) {
	o := DefaultVoxelOptions()
	m := mustMol(t, "CCCC")
	target.Spike1.PlaceLigand(m)
	v := Voxelize(target.Spike1, m, o)
	n := o.GridSize
	ligandMass, proteinMass := 0.0, 0.0
	voxPerChan := n * n * n
	for c := 0; c < chem.FeatureChannels; c++ {
		for i := 0; i < voxPerChan; i++ {
			ligandMass += math.Abs(v.Data[c*voxPerChan+i])
			proteinMass += math.Abs(v.Data[(c+chem.FeatureChannels)*voxPerChan+i])
		}
	}
	if ligandMass == 0 {
		t.Fatal("no ligand density rendered")
	}
	if proteinMass == 0 {
		t.Fatal("no protein density rendered")
	}
}

func TestVoxelizeOutOfBoxAtomsDropped(t *testing.T) {
	o := DefaultVoxelOptions()
	m := mustMol(t, "C")
	m.Atoms[0].Pos = chem.Vec3{X: 1000}
	v := Voxelize(target.Spike1, m, o)
	n := o.GridSize
	voxPerChan := n * n * n
	// Ligand channels must be empty; protein channels still populated.
	for c := 0; c < chem.FeatureChannels; c++ {
		for i := 0; i < voxPerChan; i++ {
			if v.Data[c*voxPerChan+i] != 0 {
				t.Fatal("out-of-box atom leaked into the grid")
			}
		}
	}
}

func TestVoxelizeCenteredAtomLands(t *testing.T) {
	o := VoxelOptions{GridSize: 8, Resolution: 3.0, Sigma: 0.8}
	m := &chem.Mol{Atoms: []chem.Atom{{Symbol: "C", Pos: chem.Vec3{}}}}
	v := Voxelize(target.Spike1, m, o)
	// Channel 0 (carbon/hydrophobic) should have mass near the center.
	n := o.GridSize
	c := n / 2
	centerMass := 0.0
	for dx := -1; dx <= 0; dx++ {
		for dy := -1; dy <= 0; dy++ {
			for dz := -1; dz <= 0; dz++ {
				centerMass += v.At(0, c+dx, c+dy, c+dz)
			}
		}
	}
	if centerMass <= 0 {
		t.Fatal("centered atom produced no central density")
	}
}

func TestRotate90Preserves(t *testing.T) {
	m := mustMol(t, "CC(=O)O")
	orig := m.Clone()
	// Four rotations about the same axis restore coordinates.
	for i := 0; i < 4; i++ {
		Rotate90(m, AxisZ)
	}
	for i := range m.Atoms {
		d := m.Atoms[i].Pos.Dist(orig.Atoms[i].Pos)
		if d > 1e-12 {
			t.Fatalf("atom %d moved by %v after 4 rotations", i, d)
		}
	}
	// Rotation preserves pairwise distances.
	Rotate90(m, AxisX)
	for i := range m.Atoms {
		for j := i + 1; j < len(m.Atoms); j++ {
			a := m.Atoms[i].Pos.Dist(m.Atoms[j].Pos)
			b := orig.Atoms[i].Pos.Dist(orig.Atoms[j].Pos)
			if math.Abs(a-b) > 1e-9 {
				t.Fatal("rotation distorted geometry")
			}
		}
	}
}

func TestRandomRotateDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mustMol(t, "CCCCC")
	orig := m.Clone()
	for i := 0; i < 50; i++ {
		RandomRotate(m, rng)
	}
	for i := range m.Atoms {
		if m.Atoms[i].Pos != orig.Atoms[i].Pos {
			t.Fatal("RandomRotate mutated its input")
		}
	}
}

func TestRandomRotateRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := mustMol(t, "CCN")
	changed := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		r := RandomRotate(m, rng)
		if r.Atoms[0].Pos != m.Atoms[0].Pos {
			changed++
		}
	}
	// P(any rotation) = 1 - 0.9^3 ~ 27.1%
	rate := float64(changed) / trials
	if rate < 0.20 || rate < 0.001 || rate > 0.35 {
		t.Fatalf("rotation rate %v, want ~0.27", rate)
	}
}

func TestBuildGraphNodeLayout(t *testing.T) {
	o := DefaultGraphOptions()
	m := mustMol(t, "CCO")
	target.Spike1.PlaceLigand(m)
	g := BuildGraph(target.Spike1, m, o)
	if g.NumLigand != 3 {
		t.Fatalf("NumLigand = %d", g.NumLigand)
	}
	if g.NumNodes() != 3+len(target.Spike1.Atoms) {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	// Ligand flag set on first nodes only.
	for i := 0; i < g.NumNodes(); i++ {
		flag := g.Nodes.At(i, chem.FeatureChannels)
		if (i < 3) != (flag == 1) {
			t.Fatalf("node %d ligand flag = %v", i, flag)
		}
	}
}

func TestBuildGraphCovalentEdges(t *testing.T) {
	o := DefaultGraphOptions()
	m := mustMol(t, "CCO")
	target.Spike1.PlaceLigand(m)
	g := BuildGraph(target.Spike1, m, o)
	if len(g.Covalent) != 4 { // 2 bonds, both directions
		t.Fatalf("covalent edges = %d, want 4", len(g.Covalent))
	}
	for _, e := range g.Covalent {
		if e.From >= g.NumLigand || e.To >= g.NumLigand {
			t.Fatal("covalent edge touches protein node")
		}
		if e.Dist > o.CovThreshold {
			t.Fatalf("covalent edge distance %v exceeds threshold", e.Dist)
		}
	}
}

func TestBuildGraphNonCovalentEdges(t *testing.T) {
	o := DefaultGraphOptions()
	m := mustMol(t, "c1ccccc1CCN")
	target.Spike1.PlaceLigand(m)
	g := BuildGraph(target.Spike1, m, o)
	if len(g.NonCov) == 0 {
		t.Fatal("no non-covalent edges in a posed complex")
	}
	perNode := map[int]int{}
	for _, e := range g.NonCov {
		if e.To >= g.NumLigand {
			t.Fatal("non-covalent edges must terminate on ligand atoms")
		}
		if e.Dist > o.NonCovThreshold {
			t.Fatalf("non-covalent distance %v exceeds threshold", e.Dist)
		}
		perNode[e.To]++
	}
	for node, k := range perNode {
		if k > o.NonCovK {
			t.Fatalf("node %d has %d non-covalent edges, cap %d", node, k, o.NonCovK)
		}
	}
}

func TestBuildGraphKCap(t *testing.T) {
	o := GraphOptions{CovK: 1, NonCovK: 1, CovThreshold: 3, NonCovThreshold: 8}
	m := mustMol(t, "CC(C)(C)C")
	target.Spike1.PlaceLigand(m)
	g := BuildGraph(target.Spike1, m, o)
	perNode := map[int]int{}
	for _, e := range g.Covalent {
		perNode[e.To]++
	}
	for node, k := range perNode {
		if k > 1 {
			t.Fatalf("node %d has %d covalent edges with K=1", node, k)
		}
	}
}

func TestBuildGraphExcludesBondedFromNonCov(t *testing.T) {
	o := DefaultGraphOptions()
	m := mustMol(t, "CCO")
	target.Spike1.PlaceLigand(m)
	g := BuildGraph(target.Spike1, m, o)
	bonded := map[[2]int]bool{}
	for _, b := range m.Bonds {
		bonded[[2]int{b.A, b.B}] = true
		bonded[[2]int{b.B, b.A}] = true
	}
	for _, e := range g.NonCov {
		if e.From < g.NumLigand && bonded[[2]int{e.From, e.To}] {
			t.Fatal("bonded pair appeared as non-covalent edge")
		}
	}
}
