package featurize

import (
	"testing"

	"deepfusion/internal/target"
)

// TestVoxelizeIntoReusesAndMatches pins the caller-buffer voxelizer:
// a reused (dirty) grid produces bytes identical to a fresh Voxelize,
// and the destination buffer is actually reused.
func TestVoxelizeIntoReusesAndMatches(t *testing.T) {
	o := DefaultVoxelOptions()
	m1 := mustMol(t, "CCO")
	m2 := mustMol(t, "c1ccccc1")
	target.Protease1.PlaceLigand(m1)
	target.Protease1.PlaceLigand(m2)

	dst := Voxelize(target.Protease1, m1, o) // now dirty with m1's density
	got := VoxelizeInto(dst, target.Protease1, m2, o)
	if got != dst {
		t.Fatalf("VoxelizeInto did not reuse a right-sized destination")
	}
	want := Voxelize(target.Protease1, m2, o)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("voxel %d: reused %v != fresh %v", i, got.Data[i], want.Data[i])
		}
	}
	if out := VoxelizeInto(nil, target.Protease1, m2, o); out == nil || out.Len() != want.Len() {
		t.Fatalf("nil destination must allocate")
	}
}

// TestBuildGraphIntoReusesAndMatches pins the graph counterpart:
// rebuilding into a dirty graph equals a fresh build, including when
// the node count shrinks.
func TestBuildGraphIntoReusesAndMatches(t *testing.T) {
	o := DefaultGraphOptions()
	big := mustMol(t, "CCN(CC)CCNC(=O)c1ccccc1")
	small := mustMol(t, "CCO")
	target.Spike1.PlaceLigand(big)
	target.Spike1.PlaceLigand(small)

	g := BuildGraph(target.Spike1, big, o)
	nodesBefore := &g.Nodes.Data[0]
	got := BuildGraphInto(g, target.Spike1, small, o)
	if got != g {
		t.Fatalf("BuildGraphInto returned a different graph")
	}
	if &g.Nodes.Data[0] != nodesBefore {
		t.Fatalf("node tensor was reallocated despite sufficient capacity")
	}
	want := BuildGraph(target.Spike1, small, o)
	if got.NumLigand != want.NumLigand || got.NumNodes() != want.NumNodes() {
		t.Fatalf("geometry: got %d/%d nodes, want %d/%d",
			got.NumLigand, got.NumNodes(), want.NumLigand, want.NumNodes())
	}
	for i := range want.Nodes.Data {
		if got.Nodes.Data[i] != want.Nodes.Data[i] {
			t.Fatalf("node feature %d differs after reuse", i)
		}
	}
	if len(got.Covalent) != len(want.Covalent) || len(got.NonCov) != len(want.NonCov) {
		t.Fatalf("edge counts: got %d/%d, want %d/%d",
			len(got.Covalent), len(got.NonCov), len(want.Covalent), len(want.NonCov))
	}
	for i, e := range want.Covalent {
		if got.Covalent[i] != e {
			t.Fatalf("covalent edge %d differs after reuse", i)
		}
	}
	for i, e := range want.NonCov {
		if got.NonCov[i] != e {
			t.Fatalf("non-covalent edge %d differs after reuse", i)
		}
	}
}
