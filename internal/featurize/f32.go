package featurize

// EmitF32 narrows a float64 feature block — a sample's [C,G,G,G]
// voxel grid or its graph node rows — into a float32 batch tensor
// slot. It is the featurization side of the f32 inference fast path:
// per-pose features are still computed in float64 (shared with the
// reference path and the prefeature caches), and narrow exactly once,
// at batch-assembly time, into the tensor the f32 kernels consume.
func EmitF32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic("featurize: EmitF32 length mismatch")
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}
