package featurize

import (
	"math"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

// PocketPrefeature caches everything about featurization that depends
// only on the (target, VoxelOptions, GraphOptions) triple, so the
// per-pose cost of Voxelize and BuildGraph shrinks to the ligand's
// share of the work:
//
//   - the pocket's splatted voxel baseline. Ligand and pocket atoms
//     write disjoint channel halves of the grid, so per-pose
//     voxelization needs only the ligand splats on top of the cached
//     pocket channels — and a recycled slot restores itself by zeroing
//     the handful of voxels the previous pose touched instead of
//     re-zeroing (or re-copying) the whole grid;
//   - the pocket's precomputed node-feature rows, copied wholesale
//     into each pose's graph;
//   - a uniform-grid cell list over the pocket atoms at the
//     non-covalent cutoff, so per-pose K-NN visits only the atoms in
//     the 27 cells around each ligand atom instead of every pocket
//     atom.
//
// A prefeature is immutable after construction and safe to share
// across goroutines: the screening engine builds one per job and hands
// it to every loader on every rank, and the campaign orchestrator
// reuses one per target across all of its compound chunks. Results are
// byte-identical to the uncached Voxelize/BuildGraph path: the pocket
// baseline accumulates splats in the same atom order, and K-NN ranks
// candidates by the same (dist, index) total order the brute-force
// sweep uses.
type PocketPrefeature struct {
	pocket *target.Pocket
	vox    VoxelOptions
	graph  GraphOptions

	baseline []float64 // [C*N^3] pocket-channel splats, ligand channels zero
	nodeRows []float64 // [np * NodeFeatures] pocket node features
	cells    cellList
}

// NewPocketPrefeature computes the target-invariant featurization
// cache for one (pocket, options) pair.
func NewPocketPrefeature(p *target.Pocket, vo VoxelOptions, gro GraphOptions) *PocketPrefeature {
	n := vo.GridSize
	pf := &PocketPrefeature{
		pocket:   p,
		vox:      vo,
		graph:    gro,
		baseline: make([]float64, vo.Channels()*n*n*n),
		nodeRows: make([]float64, len(p.Atoms)*NodeFeatures),
	}
	half := float64(n) * vo.Resolution / 2
	for i := range p.Atoms {
		// Same splat kernel, same chOffset, same atom order as
		// VoxelizeInto — the baseline bytes equal the pocket half of an
		// uncached grid.
		splat(pf.baseline, chem.FeatureChannels, pocketChannels(&p.Atoms[i]), p.Atoms[i].Pos, half, vo, nil)
	}
	for j := range p.Atoms {
		pocketNodeRow(&p.Atoms[j], pf.nodeRows[j*NodeFeatures:(j+1)*NodeFeatures])
	}
	pf.cells = buildCellList(p.Atoms, gro.NonCovThreshold)
	return pf
}

// Pocket returns the target this prefeature was built for.
func (pf *PocketPrefeature) Pocket() *target.Pocket { return pf.pocket }

// VoxelOptions returns the grid configuration baked into the cache.
func (pf *PocketPrefeature) VoxelOptions() VoxelOptions { return pf.vox }

// GraphOptions returns the graph configuration baked into the cache.
func (pf *PocketPrefeature) GraphOptions() GraphOptions { return pf.graph }

// Matches reports whether the prefeature was built for exactly this
// (pocket, options) triple — the screening engine refuses a mismatch
// rather than silently featurizing against the wrong cache.
func (pf *PocketPrefeature) Matches(p *target.Pocket, vo VoxelOptions, gro GraphOptions) bool {
	return pf.pocket == p && pf.vox == vo && pf.graph == gro
}

// VoxelSlotState tracks what a recycled voxel buffer currently holds:
// which prefeature's pocket baseline its protein channels carry, and
// the ligand-channel voxels the previous pose splatted. The screening
// loaders keep one per pose slot (inside fusion.Sample); with it, a
// warm slot re-voxelizes by zeroing only the touched voxels instead of
// copying the whole baseline. The zero value is valid and means "holds
// nothing".
type VoxelSlotState struct {
	owner   *PocketPrefeature
	touched []int32
}

// VoxelizeInto renders the posed ligand over the cached pocket
// baseline into dst, reusing its buffer when the element count matches
// and allocating otherwise (including dst == nil). st carries the
// slot's reuse state; a nil st is valid and falls back to copying the
// full baseline every call. The returned tensor is bit-equal to
// Voxelize(p, mol, o) for the prefeature's pocket and options.
//
// The contract for slot reuse: between calls, dst's ligand channels
// must only ever be written through this method (the engine's pose
// slots satisfy this — inference reads the grid, it never writes it).
func (pf *PocketPrefeature) VoxelizeInto(dst *tensor.Tensor, st *VoxelSlotState, mol *chem.Mol) *tensor.Tensor {
	o := pf.vox
	n := o.GridSize
	want := o.Channels() * n * n * n
	out := dst
	if out == nil || out.Len() != want {
		out = tensor.New(o.Channels(), n, n, n)
		if st != nil {
			st.owner = nil // fresh buffer: any recorded state is stale
		}
	} else {
		out.Shape = append(out.Shape[:0], o.Channels(), n, n, n)
	}
	vox := n * n * n
	switch {
	case st == nil:
		copy(out.Data, pf.baseline)
	case st.owner != pf:
		copy(out.Data, pf.baseline)
		st.owner = pf
		st.touched = st.touched[:0]
	default:
		// The grid already holds this target's baseline plus the
		// previous pose's ligand splats; the baseline's ligand channels
		// are identically zero, so restoring it means zeroing exactly
		// the voxels that pose touched.
		for _, off := range st.touched {
			for c := 0; c < chem.FeatureChannels; c++ {
				out.Data[c*vox+int(off)] = 0
			}
		}
		st.touched = st.touched[:0]
	}
	half := float64(n) * o.Resolution / 2
	var rec *[]int32
	if st != nil {
		rec = &st.touched
	}
	for _, a := range mol.Atoms {
		splat(out.Data, 0, ligandChannels(&a), a.Pos, half, o, rec)
	}
	return out
}

// BuildGraphInto constructs the pose's spatial graph into g using the
// cached pocket node rows and the cell list for the pocket half of the
// non-covalent K-NN. Byte-identical to BuildGraphInto against the
// prefeature's pocket and options; a warm rebuild allocates nothing.
func (pf *PocketPrefeature) BuildGraphInto(g *Graph, mol *chem.Mol) *Graph {
	o := pf.graph
	p := pf.pocket
	g = buildGraphCommon(g, len(p.Atoms), mol, o)
	nl := len(mol.Atoms)
	copy(g.Nodes.Data[nl*NodeFeatures:], pf.nodeRows)

	sc := &g.scratch
	for i := 0; i < nl; i++ {
		sc.stamp++
		for _, nb := range sc.nbrs[i] {
			sc.mark[nb] = sc.stamp
		}
		cs := sc.cands[:0]
		pi := mol.Atoms[i].Pos
		// Ligand-ligand candidates: the ligand is small, brute force.
		for j := 0; j < nl; j++ {
			if j == i || sc.mark[j] == sc.stamp {
				continue
			}
			d := pi.Dist(mol.Atoms[j].Pos)
			if d <= o.NonCovThreshold {
				cs = append(cs, cand{j, d})
			}
		}
		// Ligand-pocket candidates: only the 27 cells around the atom
		// can hold a pocket atom within the cutoff.
		if pf.cells.ok {
			cs = pf.cells.gather(cs, pi, nl, o.NonCovThreshold)
		} else {
			for j := range p.Atoms {
				d := pi.Dist(p.Atoms[j].Pos)
				if d <= o.NonCovThreshold {
					cs = append(cs, cand{nl + j, d})
				}
			}
		}
		sc.cands = cs
		g.appendNonCov(i, cs, o)
	}
	return g
}

// cellList is a uniform-grid spatial hash over the pocket atoms with
// cell edge equal to the non-covalent cutoff, stored CSR-style so
// queries are allocation-free: atoms within the cutoff of any query
// point lie in the 3x3x3 cell neighborhood of that point.
type cellList struct {
	ok               bool // false: no cutoff or no atoms; fall back to brute force
	minX, minY, minZ float64
	inv              float64 // 1 / cell edge
	nx, ny, nz       int
	start            []int32     // [ncells+1] CSR offsets into atoms
	atoms            []int32     // pocket atom indices grouped by cell
	pos              []chem.Vec3 // positions aligned with atoms
}

func buildCellList(atoms []target.PocketAtom, cutoff float64) cellList {
	if cutoff <= 0 || len(atoms) == 0 {
		return cellList{}
	}
	cl := cellList{ok: true, inv: 1 / cutoff}
	cl.minX, cl.minY, cl.minZ = math.Inf(1), math.Inf(1), math.Inf(1)
	maxX, maxY, maxZ := math.Inf(-1), math.Inf(-1), math.Inf(-1)
	for i := range atoms {
		p := atoms[i].Pos
		cl.minX, maxX = math.Min(cl.minX, p.X), math.Max(maxX, p.X)
		cl.minY, maxY = math.Min(cl.minY, p.Y), math.Max(maxY, p.Y)
		cl.minZ, maxZ = math.Min(cl.minZ, p.Z), math.Max(maxZ, p.Z)
	}
	dim := func(lo, hi float64) int { return int(math.Floor((hi-lo)*cl.inv)) + 1 }
	cl.nx, cl.ny, cl.nz = dim(cl.minX, maxX), dim(cl.minY, maxY), dim(cl.minZ, maxZ)
	ncells := cl.nx * cl.ny * cl.nz
	cl.start = make([]int32, ncells+1)
	cell := make([]int32, len(atoms))
	for i := range atoms {
		c := cl.cellOf(atoms[i].Pos)
		cell[i] = int32(c)
		cl.start[c+1]++
	}
	for c := 0; c < ncells; c++ {
		cl.start[c+1] += cl.start[c]
	}
	cl.atoms = make([]int32, len(atoms))
	cl.pos = make([]chem.Vec3, len(atoms))
	next := make([]int32, ncells)
	copy(next, cl.start[:ncells])
	// Filling in ascending atom order keeps each cell's atoms sorted by
	// index — not needed for correctness (the candidate sort's total
	// order takes care of ties) but it keeps traversal deterministic.
	for i := range atoms {
		k := next[cell[i]]
		next[cell[i]]++
		cl.atoms[k] = int32(i)
		cl.pos[k] = atoms[i].Pos
	}
	return cl
}

// cellOf maps an in-bounds pocket atom position to its cell index.
func (cl *cellList) cellOf(p chem.Vec3) int {
	cx := int(math.Floor((p.X - cl.minX) * cl.inv))
	cy := int(math.Floor((p.Y - cl.minY) * cl.inv))
	cz := int(math.Floor((p.Z - cl.minZ) * cl.inv))
	return (cx*cl.ny+cy)*cl.nz + cz
}

// gather appends every pocket atom within cutoff of q as a candidate
// (node index offset by idxOffset), visiting only the 27 cells around
// q. Query points anywhere in space are fine: a point more than one
// cell outside the grid clips to an empty range, which is correct —
// nothing can be within the cutoff of it.
func (cl *cellList) gather(cs []cand, q chem.Vec3, idxOffset int, cutoff float64) []cand {
	cx := int(math.Floor((q.X - cl.minX) * cl.inv))
	cy := int(math.Floor((q.Y - cl.minY) * cl.inv))
	cz := int(math.Floor((q.Z - cl.minZ) * cl.inv))
	x0, x1 := max(0, cx-1), min(cl.nx-1, cx+1)
	y0, y1 := max(0, cy-1), min(cl.ny-1, cy+1)
	z0, z1 := max(0, cz-1), min(cl.nz-1, cz+1)
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			for z := z0; z <= z1; z++ {
				c := (x*cl.ny+y)*cl.nz + z
				for k := cl.start[c]; k < cl.start[c+1]; k++ {
					d := q.Dist(cl.pos[k])
					if d <= cutoff {
						cs = append(cs, cand{idxOffset + int(cl.atoms[k]), d})
					}
				}
			}
		}
	}
	return cs
}
