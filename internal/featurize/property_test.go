package featurize

// Property-based tests (testing/quick) for the featurizers: voxel mass
// conservation under the augmentation rotations, non-negativity, and
// the structural contracts of the spatial graph builder.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// randomLigand places a small random chain molecule near the pocket
// centre so every atom stays well inside the voxel box.
func randomLigand(rng *rand.Rand, maxR float64) *chem.Mol {
	n := 4 + rng.Intn(10)
	m := &chem.Mol{Name: "prop"}
	symbols := []string{"C", "N", "O", "S", "F"}
	for i := 0; i < n; i++ {
		m.Atoms = append(m.Atoms, chem.Atom{
			Symbol: symbols[rng.Intn(len(symbols))],
			Pos: chem.Vec3{
				X: (rng.Float64()*2 - 1) * maxR,
				Y: (rng.Float64()*2 - 1) * maxR,
				Z: (rng.Float64()*2 - 1) * maxR,
			},
		})
		if i > 0 {
			m.Bonds = append(m.Bonds, chem.Bond{A: i - 1, B: i, Order: 1})
		}
	}
	return m
}

func TestVoxelizeChannelSignProperty(t *testing.T) {
	// Every channel is a splat of non-negative indicators except the
	// two formal-charge channels (ligand channel 7, protein channel
	// 7+FeatureChannels), which carry signed values. All voxels finite.
	p := target.Protease1
	o := DefaultVoxelOptions()
	chargeLig, chargeProt := chem.FeatureChannels-1, 2*chem.FeatureChannels-1
	check := func(seed int64) bool {
		m := randomLigand(rand.New(rand.NewSource(seed)), 8)
		v := Voxelize(p, m, o)
		vox := o.GridSize * o.GridSize * o.GridSize
		for i, val := range v.Data {
			if math.IsNaN(val) || math.IsInf(val, 0) {
				return false
			}
			ch := i / vox
			if ch != chargeLig && ch != chargeProt && val < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVoxelizeMassInvariantUnderRotate90(t *testing.T) {
	// A 90-degree rotation about the origin maps the (origin-centred)
	// voxel cube onto itself, so the total splatted density must be
	// conserved for ligands that stay inside the box.
	p := target.Spike1
	o := DefaultVoxelOptions()
	inner := float64(o.GridSize)/2*o.Resolution - 2*o.Resolution
	check := func(seed int64, axisPick uint) bool {
		axis := RotationAxis(axisPick % 3)
		m := randomLigand(rand.New(rand.NewSource(seed)), inner)
		before := Voxelize(p, m, o).Sum()
		r := m.Clone()
		Rotate90(r, axis)
		after := Voxelize(p, r, o).Sum()
		return math.Abs(before-after) < 1e-6*(1+math.Abs(before))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRotate90IsFourCycleProperty(t *testing.T) {
	check := func(seed int64, axisPick uint) bool {
		axis := RotationAxis(axisPick % 3)
		m := randomLigand(rand.New(rand.NewSource(seed)), 10)
		r := m.Clone()
		for i := 0; i < 4; i++ {
			Rotate90(r, axis)
		}
		for i := range m.Atoms {
			if m.Atoms[i].Pos.Dist(r.Atoms[i].Pos) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRotatePreservesDistancesProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomLigand(rng, 10)
		r := RandomRotate(m, rng)
		for i := range m.Atoms {
			for j := i + 1; j < len(m.Atoms); j++ {
				d0 := m.Atoms[i].Pos.Dist(m.Atoms[j].Pos)
				d1 := r.Atoms[i].Pos.Dist(r.Atoms[j].Pos)
				if math.Abs(d0-d1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildGraphStructuralContracts(t *testing.T) {
	// For random ligands and random K/threshold settings:
	//   - every edge references a valid node,
	//   - covalent edges stay among ligand nodes and within threshold,
	//   - non-covalent in-degree respects the K cap per receiving
	//     ligand node (edges point neighbor -> ligand node),
	//   - non-covalent edges respect the distance threshold.
	p := target.Protease2
	check := func(seed int64, kPick, tPick uint) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomLigand(rng, 8)
		o := GraphOptions{
			CovK:            2 + int(kPick%7),
			NonCovK:         2 + int((kPick/7)%7),
			CovThreshold:    1.2 + float64(tPick%48)*0.1,
			NonCovThreshold: 1.2 + float64((tPick/48)%48)*0.1,
		}
		g := BuildGraph(p, m, o)
		n := g.NumNodes()
		if n != len(m.Atoms)+len(p.Atoms) || g.NumLigand != len(m.Atoms) {
			return false
		}
		for _, e := range g.Covalent {
			if e.From < 0 || e.From >= g.NumLigand || e.To < 0 || e.To >= g.NumLigand {
				return false
			}
			if e.Dist > o.CovThreshold+1e-9 {
				return false
			}
		}
		inDeg := make(map[int]int)
		for _, e := range g.NonCov {
			if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
				return false
			}
			if e.Dist > o.NonCovThreshold+1e-9 {
				return false
			}
			if e.To >= g.NumLigand {
				return false // messages flow into ligand nodes only
			}
			inDeg[e.To]++
		}
		for _, d := range inDeg {
			if d > o.NonCovK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVoxelizeDeterministicProperty(t *testing.T) {
	p := target.Spike2
	o := DefaultVoxelOptions()
	check := func(seed int64) bool {
		m := randomLigand(rand.New(rand.NewSource(seed)), 8)
		a := Voxelize(p, m, o)
		b := Voxelize(p, m, o)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperVoxelOptionsUsableEndToEnd(t *testing.T) {
	// The paper-scale grid must satisfy the 3D-CNN's divisibility
	// constraint (two 2x pooling stages) and voxelize a real complex.
	o := PaperVoxelOptions()
	if o.GridSize%4 != 0 {
		t.Fatalf("paper grid %d not divisible by 4", o.GridSize)
	}
	m := randomLigand(rand.New(rand.NewSource(1)), 10)
	v := Voxelize(target.Protease1, m, o)
	wantLen := o.Channels() * o.GridSize * o.GridSize * o.GridSize
	if v.Len() != wantLen {
		t.Fatalf("paper-scale tensor has %d elements, want %d", v.Len(), wantLen)
	}
	if v.Sum() <= 0 {
		t.Fatal("paper-scale voxelization produced an empty grid")
	}
}
