package featurize

// Golden and property tests for the target-invariant prefeature cache:
// the cached path must be byte-identical to Voxelize/BuildGraph —
// across option scales, across recycled slots, and across different
// targets interleaved through one slot — and the cell-list K-NN must
// select exactly the brute-force neighbors on arbitrary poses.

import (
	"fmt"
	"math/rand"
	"testing"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

// assertVoxelsEqual compares two grids bit-for-bit.
func assertVoxelsEqual(t *testing.T, ctx string, got, want *tensor.Tensor) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: grid size %d != %d", ctx, got.Len(), want.Len())
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: voxel %d: cached %v != uncached %v", ctx, i, got.Data[i], want.Data[i])
		}
	}
}

// assertGraphsEqual compares two graphs bit-for-bit: node features and
// both edge lists, including distances and order.
func assertGraphsEqual(t *testing.T, ctx string, got, want *Graph) {
	t.Helper()
	if got.NumLigand != want.NumLigand || got.NumNodes() != want.NumNodes() {
		t.Fatalf("%s: geometry %d/%d nodes, want %d/%d",
			ctx, got.NumLigand, got.NumNodes(), want.NumLigand, want.NumNodes())
	}
	for i := range want.Nodes.Data {
		if got.Nodes.Data[i] != want.Nodes.Data[i] {
			t.Fatalf("%s: node feature %d: cached %v != uncached %v",
				ctx, i, got.Nodes.Data[i], want.Nodes.Data[i])
		}
	}
	if len(got.Covalent) != len(want.Covalent) || len(got.NonCov) != len(want.NonCov) {
		t.Fatalf("%s: edge counts %d/%d, want %d/%d",
			ctx, len(got.Covalent), len(got.NonCov), len(want.Covalent), len(want.NonCov))
	}
	for i, e := range want.Covalent {
		if got.Covalent[i] != e {
			t.Fatalf("%s: covalent edge %d: cached %+v != uncached %+v", ctx, i, got.Covalent[i], e)
		}
	}
	for i, e := range want.NonCov {
		if got.NonCov[i] != e {
			t.Fatalf("%s: non-covalent edge %d: cached %+v != uncached %+v", ctx, i, got.NonCov[i], e)
		}
	}
}

// TestPrefeatureByteIdenticalAcrossScales pins the tentpole contract
// at both option scales: the prefeature-cached voxelizer and graph
// builder produce bytes identical to the uncached path, including
// through recycled (dirty) slots.
func TestPrefeatureByteIdenticalAcrossScales(t *testing.T) {
	mols := []*chem.Mol{
		mustMol(t, "CCO"),
		mustMol(t, "c1ccccc1"),
		mustMol(t, "CCN(CC)CCNC(=O)c1ccccc1"),
		mustMol(t, "CC(C)Cc1ccc(cc1)C(C)C(=O)O"),
	}
	for _, m := range mols {
		target.Protease1.PlaceLigand(m)
	}
	scales := []struct {
		name string
		vo   VoxelOptions
	}{
		{"repro", DefaultVoxelOptions()},
		{"paper", PaperVoxelOptions()},
	}
	gro := DefaultGraphOptions()
	for _, sc := range scales {
		t.Run(sc.name, func(t *testing.T) {
			pf := NewPocketPrefeature(target.Protease1, sc.vo, gro)
			var (
				vslot *tensor.Tensor
				state VoxelSlotState
				gslot *Graph
			)
			// Two passes over the molecule set: the second pass
			// exercises fully warm, dirty slots.
			for pass := 0; pass < 2; pass++ {
				for mi, m := range mols {
					ctx := fmt.Sprintf("pass %d mol %d", pass, mi)
					vslot = pf.VoxelizeInto(vslot, &state, m)
					assertVoxelsEqual(t, ctx, vslot, Voxelize(target.Protease1, m, sc.vo))
					gslot = pf.BuildGraphInto(gslot, m)
					assertGraphsEqual(t, ctx, gslot, BuildGraph(target.Protease1, m, gro))
				}
			}
			// A nil slot state must still be correct (full baseline copy
			// per call).
			out := pf.VoxelizeInto(nil, nil, mols[0])
			assertVoxelsEqual(t, "nil state", out, Voxelize(target.Protease1, mols[0], sc.vo))
		})
	}
}

// TestPrefeatureInterleavedTargetsNoLeakage drives one recycled slot
// alternately through two different targets' prefeatures — the shape
// of a loader fed interleaved jobs — and checks every pose against the
// uncached path. A stale baseline or touched-voxel list from the other
// target would show up immediately.
func TestPrefeatureInterleavedTargetsNoLeakage(t *testing.T) {
	vo := DefaultVoxelOptions()
	gro := DefaultGraphOptions()
	pfA := NewPocketPrefeature(target.Protease1, vo, gro)
	pfB := NewPocketPrefeature(target.Spike1, vo, gro)
	m1 := mustMol(t, "CCN(CC)CCNC(=O)c1ccccc1")
	m2 := mustMol(t, "CCO")
	target.Protease1.PlaceLigand(m1)
	target.Protease1.PlaceLigand(m2)

	var (
		vslot *tensor.Tensor
		state VoxelSlotState
		gslot *Graph
	)
	seq := []struct {
		pf  *PocketPrefeature
		tgt *target.Pocket
		m   *chem.Mol
	}{
		{pfA, target.Protease1, m1},
		{pfB, target.Spike1, m1},
		{pfB, target.Spike1, m2},
		{pfA, target.Protease1, m2},
		{pfA, target.Protease1, m1},
		{pfB, target.Spike1, m1},
	}
	for i, s := range seq {
		ctx := fmt.Sprintf("step %d (%s)", i, s.tgt.Name)
		vslot = s.pf.VoxelizeInto(vslot, &state, s.m)
		assertVoxelsEqual(t, ctx, vslot, Voxelize(s.tgt, s.m, vo))
		gslot = s.pf.BuildGraphInto(gslot, s.m)
		assertGraphsEqual(t, ctx, gslot, BuildGraph(s.tgt, s.m, gro))
	}
}

// TestCellListKNNMatchesBruteForce is the property test of the
// neighbor search: on randomized poses — including atoms far outside
// the pocket box — the cell-list K-NN selects exactly the brute-force
// neighbors, in the same order, at several cutoffs.
func TestCellListKNNMatchesBruteForce(t *testing.T) {
	pockets := target.All()
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := pockets[int(seed)%len(pockets)]
		// Spread ligand atoms from deep inside the pocket to well
		// outside the cell grid.
		m := randomLigand(rng, 4+rng.Float64()*20)
		gro := DefaultGraphOptions()
		gro.NonCovThreshold = []float64{1.5, 5.22, 12}[int(seed)%3]
		gro.NonCovK = 1 + int(seed)%5
		pf := NewPocketPrefeature(p, DefaultVoxelOptions(), gro)
		got := pf.BuildGraphInto(nil, m)
		want := BuildGraph(p, m, gro)
		assertGraphsEqual(t, fmt.Sprintf("seed %d pocket %s", seed, p.Name), got, want)
	}
}

// symmetricPocket puts six pseudo-atoms at exactly distance r along
// the coordinate axes — every pair of opposite atoms is equidistant
// from the origin, so K-NN ties are guaranteed.
func symmetricPocket(r float64) *target.Pocket {
	return &target.Pocket{
		Name: "sym",
		Atoms: []target.PocketAtom{
			{Pos: chem.Vec3{X: r}},
			{Pos: chem.Vec3{X: -r}},
			{Pos: chem.Vec3{Y: r}},
			{Pos: chem.Vec3{Y: -r}},
			{Pos: chem.Vec3{Z: r}},
			{Pos: chem.Vec3{Z: -r}},
		},
		Radius: r + 1,
	}
}

// TestNonCovKNNTieOrder pins the satellite fix: equidistant
// non-covalent candidates rank by node index, so a capped K-NN
// selects the lowest-indexed neighbors — deterministically, on both
// the brute-force and the cell-list path.
func TestNonCovKNNTieOrder(t *testing.T) {
	p := symmetricPocket(3) // all six atoms at exactly 3.0 A (sqrt(9) is exact)
	m := &chem.Mol{Name: "probe", Atoms: []chem.Atom{{Symbol: "C"}}}
	o := GraphOptions{CovK: 6, NonCovK: 3, CovThreshold: 2.24, NonCovThreshold: 5}

	want := []Edge{
		{From: 1, To: 0, Dist: 3}, // pocket atom 0 is node 1 (nl == 1)
		{From: 2, To: 0, Dist: 3},
		{From: 3, To: 0, Dist: 3},
	}
	check := func(path string, g *Graph) {
		t.Helper()
		if len(g.NonCov) != len(want) {
			t.Fatalf("%s: %d non-covalent edges, want %d", path, len(g.NonCov), len(want))
		}
		for i, e := range want {
			if g.NonCov[i] != e {
				t.Fatalf("%s: tie broken wrong: edge %d = %+v, want %+v", path, i, g.NonCov[i], e)
			}
		}
	}
	check("brute-force", BuildGraph(p, m, o))
	pf := NewPocketPrefeature(p, DefaultVoxelOptions(), o)
	check("cell-list", pf.BuildGraphInto(nil, m))
}

// TestCovalentKNNTieOrder pins the covalent half of the tie fix: four
// bonds of exactly equal length capped at CovK=2 keep the two
// lowest-indexed partners.
func TestCovalentKNNTieOrder(t *testing.T) {
	d := 1.5
	m := &chem.Mol{
		Name: "star",
		Atoms: []chem.Atom{
			{Symbol: "C"},
			{Symbol: "C", Pos: chem.Vec3{X: d}},
			{Symbol: "C", Pos: chem.Vec3{X: -d}},
			{Symbol: "C", Pos: chem.Vec3{Y: d}},
			{Symbol: "C", Pos: chem.Vec3{Y: -d}},
		},
		Bonds: []chem.Bond{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}, {A: 0, B: 4}},
	}
	o := GraphOptions{CovK: 2, NonCovK: 0, CovThreshold: 2.24, NonCovThreshold: 0}
	g := BuildGraph(symmetricPocket(50), m, o)
	// Node 0's candidates 1..4 are all at exactly 1.5 A; CovK=2 must
	// keep partners 1 and 2. Leaf nodes each keep their single bond.
	var node0 []Edge
	for _, e := range g.Covalent {
		if e.To == 0 {
			node0 = append(node0, e)
		}
	}
	want := []Edge{{From: 1, To: 0, Dist: d}, {From: 2, To: 0, Dist: d}}
	if len(node0) != len(want) {
		t.Fatalf("node 0 kept %d covalent edges, want %d", len(node0), len(want))
	}
	for i, e := range want {
		if node0[i] != e {
			t.Fatalf("covalent tie broken wrong: edge %d = %+v, want %+v", i, node0[i], e)
		}
	}
}

// TestBuildGraphIntoWarmZeroAlloc pins the scratch design: rebuilding
// a warm graph — cached or uncached path — performs no heap
// allocations.
func TestBuildGraphIntoWarmZeroAlloc(t *testing.T) {
	gro := DefaultGraphOptions()
	mols := []*chem.Mol{
		mustMol(t, "CCN(CC)CCNC(=O)c1ccccc1"),
		mustMol(t, "CCO"),
		mustMol(t, "CC(C)Cc1ccc(cc1)C(C)C(=O)O"),
	}
	for _, m := range mols {
		target.Protease1.PlaceLigand(m)
	}
	pf := NewPocketPrefeature(target.Protease1, DefaultVoxelOptions(), gro)

	var g *Graph
	i := 0
	loop := func() { g = pf.BuildGraphInto(g, mols[i%len(mols)]); i++ }
	for w := 0; w < 2*len(mols); w++ {
		loop()
	}
	if avg := testing.AllocsPerRun(30, loop); avg != 0 {
		t.Errorf("warm cell-list BuildGraphInto allocates %.1f times per pose, want 0", avg)
	}

	var gb *Graph
	j := 0
	brute := func() { gb = BuildGraphInto(gb, target.Protease1, mols[j%len(mols)], gro); j++ }
	for w := 0; w < 2*len(mols); w++ {
		brute()
	}
	if avg := testing.AllocsPerRun(30, brute); avg != 0 {
		t.Errorf("warm brute-force BuildGraphInto allocates %.1f times per pose, want 0", avg)
	}
}
