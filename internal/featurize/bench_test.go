package featurize

// Featurization benchmarks: the per-pose cost of Voxelize and
// BuildGraph, uncached vs through the target-invariant prefeature
// cache, at both the repro grid and the paper's 48^3 grid.
//
//	go test ./internal/featurize/ -run xxx -bench . -benchtime 1s
//
// make bench-featurize records the comparison; cmd/benchreport
// -kernels archives the machine-readable form as BENCH_5.json.

import (
	"testing"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

// benchLigand is a mid-sized drug-like molecule posed in the pocket.
func benchLigand(b *testing.B) *chem.Mol {
	b.Helper()
	m, err := chem.ParseSMILES("CCN(CC)CCNC(=O)c1ccc(N)cc1")
	if err != nil {
		b.Fatal(err)
	}
	chem.Embed3D(m, 3)
	target.Protease1.PlaceLigand(m)
	return m
}

func benchVoxelize(b *testing.B, vo VoxelOptions, cached bool) {
	b.ReportAllocs()
	m := benchLigand(b)
	gro := DefaultGraphOptions()
	if cached {
		pf := NewPocketPrefeature(target.Protease1, vo, gro)
		var st VoxelSlotState
		dst := pf.VoxelizeInto(nil, &st, m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = pf.VoxelizeInto(dst, &st, m)
		}
		return
	}
	dst := Voxelize(target.Protease1, m, vo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = VoxelizeInto(dst, target.Protease1, m, vo)
	}
}

func BenchmarkVoxelizeRepro(b *testing.B)       { benchVoxelize(b, DefaultVoxelOptions(), false) }
func BenchmarkVoxelizeReproCached(b *testing.B) { benchVoxelize(b, DefaultVoxelOptions(), true) }
func BenchmarkVoxelizePaper(b *testing.B)       { benchVoxelize(b, PaperVoxelOptions(), false) }
func BenchmarkVoxelizePaperCached(b *testing.B) { benchVoxelize(b, PaperVoxelOptions(), true) }

func benchBuildGraph(b *testing.B, cached bool) {
	b.ReportAllocs()
	m := benchLigand(b)
	gro := DefaultGraphOptions()
	if cached {
		pf := NewPocketPrefeature(target.Protease1, DefaultVoxelOptions(), gro)
		g := pf.BuildGraphInto(nil, m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g = pf.BuildGraphInto(g, m)
		}
		return
	}
	g := BuildGraph(target.Protease1, m, gro)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = BuildGraphInto(g, target.Protease1, m, gro)
	}
}

func BenchmarkBuildGraph(b *testing.B)       { benchBuildGraph(b, false) }
func BenchmarkBuildGraphCached(b *testing.B) { benchBuildGraph(b, true) }

// benchFeaturizePose measures a full pose featurization — voxel grid
// plus spatial graph, the loader's per-pose work — at a given grid
// scale. This is the pair the ISSUE's >=2x acceptance bar is measured
// on at the paper scale.
func benchFeaturizePose(b *testing.B, vo VoxelOptions, cached bool) {
	b.ReportAllocs()
	m := benchLigand(b)
	gro := DefaultGraphOptions()
	if cached {
		pf := NewPocketPrefeature(target.Protease1, vo, gro)
		var st VoxelSlotState
		var dst *tensor.Tensor
		var g *Graph
		dst = pf.VoxelizeInto(dst, &st, m)
		g = pf.BuildGraphInto(g, m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = pf.VoxelizeInto(dst, &st, m)
			g = pf.BuildGraphInto(g, m)
		}
		return
	}
	dst := Voxelize(target.Protease1, m, vo)
	g := BuildGraph(target.Protease1, m, gro)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = VoxelizeInto(dst, target.Protease1, m, vo)
		g = BuildGraphInto(g, target.Protease1, m, gro)
	}
}

func BenchmarkFeaturizePoseRepro(b *testing.B) { benchFeaturizePose(b, DefaultVoxelOptions(), false) }
func BenchmarkFeaturizePoseReproCached(b *testing.B) {
	benchFeaturizePose(b, DefaultVoxelOptions(), true)
}
func BenchmarkFeaturizePosePaper(b *testing.B) { benchFeaturizePose(b, PaperVoxelOptions(), false) }
func BenchmarkFeaturizePosePaperCached(b *testing.B) {
	benchFeaturizePose(b, PaperVoxelOptions(), true)
}
