package featurize

import (
	"sort"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

// NodeFeatures is the per-node feature width of the spatial graph:
// the shared 8 atom channels plus an is-ligand flag and a normalized
// heavy-atom degree.
const NodeFeatures = chem.FeatureChannels + 2

// GraphOptions configures spatial-graph construction; these correspond
// to the SG-CNN rows of Table 1 (K neighbors and distance thresholds
// for the covalent and non-covalent edge types).
type GraphOptions struct {
	CovK            int     // max covalent neighbors per node
	NonCovK         int     // max non-covalent neighbors per node
	CovThreshold    float64 // Angstroms
	NonCovThreshold float64 // Angstroms
}

// DefaultGraphOptions mirrors the converged Table 2 values (K=6/3,
// thresholds 2.24 A / 5.22 A).
func DefaultGraphOptions() GraphOptions {
	return GraphOptions{CovK: 6, NonCovK: 3, CovThreshold: 2.24, NonCovThreshold: 5.22}
}

// Edge is one directed graph edge with its interatomic distance.
type Edge struct {
	From, To int
	Dist     float64
}

// Graph is the SG-CNN input: node features for ligand atoms followed
// by pocket pseudo-atoms, with covalent edges (bond graph, ligand
// only) and non-covalent edges (distance-thresholded K-NN including
// protein contacts).
type Graph struct {
	Nodes     *tensor.Tensor // [NumNodes, NodeFeatures]
	NumLigand int            // ligand nodes come first
	Covalent  []Edge
	NonCov    []Edge
}

// NumNodes returns the total node count.
func (g *Graph) NumNodes() int { return g.Nodes.Dim(0) }

// BuildGraph constructs the spatial graph for the complex. Covalent
// edges come from the ligand bond list filtered by CovThreshold and
// capped at CovK per node; non-covalent edges connect each ligand atom
// to its nearest non-bonded neighbors (ligand or pocket) within
// NonCovThreshold, capped at NonCovK.
func BuildGraph(p *target.Pocket, mol *chem.Mol, o GraphOptions) *Graph {
	return BuildGraphInto(nil, p, mol, o)
}

// BuildGraphInto constructs the spatial graph into g, reusing its node
// tensor (when capacity allows) and edge slices across calls — the
// caller-buffer entry point the screening loaders recycle pose slots
// through. A nil g allocates a fresh graph. Internal build scratch
// (candidate lists, the bonded-pair set) is still per-call; what the
// reuse eliminates is the per-pose node matrix and edge lists, the
// allocations that dominate steady-state graph featurization. Results
// are identical to BuildGraph.
func BuildGraphInto(g *Graph, p *target.Pocket, mol *chem.Mol, o GraphOptions) *Graph {
	nl := len(mol.Atoms)
	np := len(p.Atoms)
	if g == nil {
		g = &Graph{}
	}
	g.NumLigand = nl
	if g.Nodes == nil || cap(g.Nodes.Data) < (nl+np)*NodeFeatures {
		g.Nodes = tensor.New(nl+np, NodeFeatures)
	} else {
		g.Nodes.Data = g.Nodes.Data[:(nl+np)*NodeFeatures]
		g.Nodes.Shape = append(g.Nodes.Shape[:0], nl+np, NodeFeatures)
		g.Nodes.Zero()
	}
	g.Covalent = g.Covalent[:0]
	g.NonCov = g.NonCov[:0]

	adj := mol.Adjacency()
	for i, a := range mol.Atoms {
		ch := chem.AtomChannels(a.Symbol, a.Charge, a.Aromatic)
		row := g.Nodes.Row(i)
		copy(row, ch[:])
		row[chem.FeatureChannels] = 1 // is-ligand
		row[chem.FeatureChannels+1] = float64(len(adj[i])) / 4
	}
	for j, pa := range p.Atoms {
		row := g.Nodes.Row(nl + j)
		if pa.Hydrophobic {
			row[0] = 1
		}
		if pa.Donor {
			row[5] = 1
		}
		if pa.Acceptor {
			row[6] = 1
		}
		row[7] = pa.Charged
		row[3] = 1
	}

	// Covalent edges: ligand bonds within the threshold, symmetric,
	// capped at CovK per node (nearest first).
	type cand struct {
		to   int
		dist float64
	}
	covCands := make([][]cand, nl)
	for _, b := range mol.Bonds {
		d := mol.Atoms[b.A].Pos.Dist(mol.Atoms[b.B].Pos)
		if o.CovThreshold > 0 && d > o.CovThreshold {
			continue
		}
		covCands[b.A] = append(covCands[b.A], cand{b.B, d})
		covCands[b.B] = append(covCands[b.B], cand{b.A, d})
	}
	for i, cs := range covCands {
		sort.Slice(cs, func(a, b int) bool { return cs[a].dist < cs[b].dist })
		k := len(cs)
		if o.CovK > 0 && k > o.CovK {
			k = o.CovK
		}
		for _, c := range cs[:k] {
			g.Covalent = append(g.Covalent, Edge{From: c.to, To: i, Dist: c.dist})
		}
	}

	// Non-covalent edges: for each ligand atom, nearest neighbors among
	// all non-bonded atoms (ligand or protein) within the threshold.
	bonded := map[[2]int]bool{}
	for _, b := range mol.Bonds {
		bonded[[2]int{b.A, b.B}] = true
		bonded[[2]int{b.B, b.A}] = true
	}
	for i := 0; i < nl; i++ {
		var cs []cand
		pi := mol.Atoms[i].Pos
		for j := 0; j < nl+np; j++ {
			if j == i || bonded[[2]int{i, j}] {
				continue
			}
			var pj chem.Vec3
			if j < nl {
				pj = mol.Atoms[j].Pos
			} else {
				pj = p.Atoms[j-nl].Pos
			}
			d := pi.Dist(pj)
			if d <= o.NonCovThreshold {
				cs = append(cs, cand{j, d})
			}
		}
		sort.Slice(cs, func(a, b int) bool { return cs[a].dist < cs[b].dist })
		k := len(cs)
		if o.NonCovK > 0 && k > o.NonCovK {
			k = o.NonCovK
		}
		for _, c := range cs[:k] {
			g.NonCov = append(g.NonCov, Edge{From: c.to, To: i, Dist: c.dist})
		}
	}
	return g
}
