package featurize

import (
	"deepfusion/internal/chem"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

// NodeFeatures is the per-node feature width of the spatial graph:
// the shared 8 atom channels plus an is-ligand flag and a normalized
// heavy-atom degree.
const NodeFeatures = chem.FeatureChannels + 2

// GraphOptions configures spatial-graph construction; these correspond
// to the SG-CNN rows of Table 1 (K neighbors and distance thresholds
// for the covalent and non-covalent edge types).
type GraphOptions struct {
	CovK            int     // max covalent neighbors per node
	NonCovK         int     // max non-covalent neighbors per node
	CovThreshold    float64 // Angstroms
	NonCovThreshold float64 // Angstroms
}

// DefaultGraphOptions mirrors the converged Table 2 values (K=6/3,
// thresholds 2.24 A / 5.22 A).
func DefaultGraphOptions() GraphOptions {
	return GraphOptions{CovK: 6, NonCovK: 3, CovThreshold: 2.24, NonCovThreshold: 5.22}
}

// Edge is one directed graph edge with its interatomic distance.
type Edge struct {
	From, To int
	Dist     float64
}

// Graph is the SG-CNN input: node features for ligand atoms followed
// by pocket pseudo-atoms, with covalent edges (bond graph, ligand
// only) and non-covalent edges (distance-thresholded K-NN including
// protein contacts).
type Graph struct {
	Nodes     *tensor.Tensor // [NumNodes, NodeFeatures]
	NumLigand int            // ligand nodes come first
	Covalent  []Edge
	NonCov    []Edge

	// scratch is the build-time working set (candidate lists,
	// bonded-neighbor stamps, degree counts) recycled across rebuilds
	// of this Graph. With it, a warm BuildGraphInto — prefeature-cached
	// or not — performs no heap allocations.
	scratch graphScratch
}

// NumNodes returns the total node count.
func (g *Graph) NumNodes() int { return g.Nodes.Dim(0) }

// cand is one K-NN candidate: neighbor node index and distance.
type cand struct {
	to   int
	dist float64
}

// candLess is the explicit (dist, index) total order every candidate
// sort uses. Ranking by bare distance left equidistant neighbors at
// the mercy of an unstable sort — and an enumeration-order-dependent
// tie would break the cell-list path's byte-equality with brute force.
func candLess(a, b cand) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.to < b.to
}

// sortCands orders candidates by (dist, index). Insertion sort: the
// lists are tiny (bond degree, or the K-NN candidates of one atom) and
// it sorts in place with zero allocations on the warm loader path.
func sortCands(cs []cand) {
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && candLess(c, cs[j]) {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}

// graphScratch holds per-build working buffers keyed to the ligand:
// heavy-atom degrees, bonded partner lists, covalent candidate lists
// (all indexed by ligand atom), one shared non-covalent candidate
// buffer, and a generation-stamped bonded mark array that replaces the
// old per-call map.
type graphScratch struct {
	deg      []int
	nbrs     [][]int32
	covCands [][]cand
	cands    []cand
	mark     []int
	stamp    int
}

// listsWithLen resizes a slice-of-slices to length n, keeping every
// already-grown sub-slice's capacity and resetting each to empty.
func listsWithLen[T any](s [][]T, n int) [][]T {
	if cap(s) < n {
		ns := make([][]T, n)
		copy(ns, s[:cap(s)])
		s = ns
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// prepare sizes the scratch for mol and fills the bond-derived tables
// (degrees and bonded partners).
func (sc *graphScratch) prepare(mol *chem.Mol) {
	nl := len(mol.Atoms)
	if cap(sc.deg) < nl {
		sc.deg = make([]int, nl)
	} else {
		sc.deg = sc.deg[:nl]
		for i := range sc.deg {
			sc.deg[i] = 0
		}
	}
	sc.nbrs = listsWithLen(sc.nbrs, nl)
	sc.covCands = listsWithLen(sc.covCands, nl)
	if cap(sc.mark) < nl {
		// A fresh mark array is all zero and the stamp restarts above
		// it; stale stamps can never collide because the stamp only
		// ever increases within one array's lifetime.
		sc.mark = make([]int, nl)
		sc.stamp = 0
	} else if len(sc.mark) < nl {
		// Re-extending within capacity may expose marks from an older,
		// larger ligand — all of them carry stamps below the current
		// one, so they can never match a future stamp.
		sc.mark = sc.mark[:nl]
	}
	for _, b := range mol.Bonds {
		sc.deg[b.A]++
		sc.deg[b.B]++
		sc.nbrs[b.A] = append(sc.nbrs[b.A], int32(b.B))
		sc.nbrs[b.B] = append(sc.nbrs[b.B], int32(b.A))
	}
}

// BuildGraph constructs the spatial graph for the complex. Covalent
// edges come from the ligand bond list filtered by CovThreshold and
// capped at CovK per node; non-covalent edges connect each ligand atom
// to its nearest non-bonded neighbors (ligand or pocket) within
// NonCovThreshold, capped at NonCovK. Equidistant candidates rank by
// node index, so the graph is a pure function of the geometry.
func BuildGraph(p *target.Pocket, mol *chem.Mol, o GraphOptions) *Graph {
	g := BuildGraphInto(nil, p, mol, o)
	// One-shot graphs (training corpora hold thousands, never rebuilt)
	// do not pay to retain the rebuild scratch; recycled screening
	// slots go through BuildGraphInto directly and keep theirs.
	g.scratch = graphScratch{}
	return g
}

// BuildGraphInto constructs the spatial graph into g, reusing its node
// tensor (when capacity allows), edge slices and build scratch across
// calls — the caller-buffer entry point the screening loaders recycle
// pose slots through. A nil g allocates a fresh graph. Results are
// identical to BuildGraph, and a warm rebuild allocates nothing.
func BuildGraphInto(g *Graph, p *target.Pocket, mol *chem.Mol, o GraphOptions) *Graph {
	g = buildGraphCommon(g, len(p.Atoms), mol, o)
	nl, np := len(mol.Atoms), len(p.Atoms)
	for j := range p.Atoms {
		pocketNodeRow(&p.Atoms[j], g.Nodes.Row(nl+j))
	}

	// Non-covalent edges: for each ligand atom, nearest neighbors among
	// all non-bonded atoms (ligand or protein) within the threshold.
	sc := &g.scratch
	for i := 0; i < nl; i++ {
		sc.stamp++
		for _, nb := range sc.nbrs[i] {
			sc.mark[nb] = sc.stamp
		}
		cs := sc.cands[:0]
		pi := mol.Atoms[i].Pos
		for j := 0; j < nl+np; j++ {
			if j == i || (j < nl && sc.mark[j] == sc.stamp) {
				continue
			}
			var pj chem.Vec3
			if j < nl {
				pj = mol.Atoms[j].Pos
			} else {
				pj = p.Atoms[j-nl].Pos
			}
			d := pi.Dist(pj)
			if d <= o.NonCovThreshold {
				cs = append(cs, cand{j, d})
			}
		}
		sc.cands = cs
		g.appendNonCov(i, cs, o)
	}
	return g
}

// buildGraphCommon is the target-independent half of graph
// construction shared by the brute-force and prefeature-cached paths:
// it sizes g for nl ligand + np pocket nodes, writes the ligand node
// rows, rebuilds the covalent edge list and prepares the bonded
// scratch the non-covalent pass reads. The caller fills the pocket
// rows and the non-covalent edges. Every node row is written in full,
// so no grid zeroing is needed.
func buildGraphCommon(g *Graph, np int, mol *chem.Mol, o GraphOptions) *Graph {
	nl := len(mol.Atoms)
	if g == nil {
		g = &Graph{}
	}
	g.NumLigand = nl
	if g.Nodes == nil || cap(g.Nodes.Data) < (nl+np)*NodeFeatures {
		g.Nodes = tensor.New(nl+np, NodeFeatures)
	} else {
		g.Nodes.Data = g.Nodes.Data[:(nl+np)*NodeFeatures]
		g.Nodes.Shape = append(g.Nodes.Shape[:0], nl+np, NodeFeatures)
	}
	g.Covalent = g.Covalent[:0]
	g.NonCov = g.NonCov[:0]

	sc := &g.scratch
	sc.prepare(mol)
	for i, a := range mol.Atoms {
		ch := chem.AtomChannels(a.Symbol, a.Charge, a.Aromatic)
		row := g.Nodes.Row(i)
		copy(row, ch[:])
		row[chem.FeatureChannels] = 1 // is-ligand
		row[chem.FeatureChannels+1] = float64(sc.deg[i]) / 4
	}

	// Covalent edges: ligand bonds within the threshold, symmetric,
	// capped at CovK per node (nearest first, ties by index).
	for _, b := range mol.Bonds {
		d := mol.Atoms[b.A].Pos.Dist(mol.Atoms[b.B].Pos)
		if o.CovThreshold > 0 && d > o.CovThreshold {
			continue
		}
		sc.covCands[b.A] = append(sc.covCands[b.A], cand{b.B, d})
		sc.covCands[b.B] = append(sc.covCands[b.B], cand{b.A, d})
	}
	for i, cs := range sc.covCands {
		sortCands(cs)
		k := len(cs)
		if o.CovK > 0 && k > o.CovK {
			k = o.CovK
		}
		for _, c := range cs[:k] {
			g.Covalent = append(g.Covalent, Edge{From: c.to, To: i, Dist: c.dist})
		}
	}
	return g
}

// appendNonCov sorts atom i's candidate list by (dist, index), caps it
// at NonCovK and appends the surviving edges.
func (g *Graph) appendNonCov(i int, cs []cand, o GraphOptions) {
	sortCands(cs)
	k := len(cs)
	if o.NonCovK > 0 && k > o.NonCovK {
		k = o.NonCovK
	}
	for _, c := range cs[:k] {
		g.NonCov = append(g.NonCov, Edge{From: c.to, To: i, Dist: c.dist})
	}
}

// pocketNodeRow writes one pocket pseudo-atom's full node-feature row.
// Writing every entry (zeros included) is what lets both build paths
// skip zeroing the node tensor and lets the prefeature precompute the
// rows once per target.
func pocketNodeRow(pa *target.PocketAtom, row []float64) {
	for i := range row {
		row[i] = 0
	}
	if pa.Hydrophobic {
		row[0] = 1
	}
	row[3] = 1 // generic heavy-atom presence channel for the protein
	if pa.Donor {
		row[5] = 1
	}
	if pa.Acceptor {
		row[6] = 1
	}
	row[7] = pa.Charged
}
