package h5lite

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// FuzzRead drives the decoder with arbitrary bytes. The contract
// under fuzzing: never panic, never allocate beyond the input's
// actual size (a forged length field must not OOM the process — the
// fuzzer's memory limit enforces this), and when a parse succeeds the
// content must re-encode and re-decode cleanly (the format is
// self-consistent). Seed corpus: valid v1 and v2 streams, every
// truncation of the v2 golden header, and assorted structural junk;
// the same seeds are checked in under testdata/fuzz/FuzzRead so CI's
// -fuzztime smoke starts from real coverage.
func FuzzRead(f *testing.F) {
	v1, _ := hex.DecodeString(goldenV1Hex)
	v2, _ := hex.DecodeString(goldenV2Hex)
	f.Add(v1)
	f.Add(v2)
	f.Add(v2[:len(v2)/2])
	f.Add(v1[:9])
	f.Add([]byte("H5LITE01"))
	f.Add([]byte("H5LITE02"))
	f.Add([]byte("H5LITE99 not a real version"))
	f.Add([]byte{})
	// Forged giant length: header claims 2^32 floats backed by nothing.
	forged := append([]byte("H5LITE01"), tagGroupStart)
	forged = append(forged, 1, 0, 0, 0, '/')
	forged = append(forged, tagFloats, 1, 0, 0, 0, 'x', 0, 0, 0, 0, 1, 0, 0, 0)
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Read(bytes.NewReader(data))
		if err != nil {
			if file != nil {
				t.Fatal("non-nil file returned alongside error")
			}
			return
		}
		// Successful parses must round-trip through the current writer.
		var buf bytes.Buffer
		if err := file.Write(&buf); err != nil {
			t.Fatalf("re-encode of successfully parsed input failed: %v", err)
		}
		again, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of re-encoded input failed: %v", err)
		}
		if !filesEqual(file, again) {
			t.Fatal("content changed across re-encode/re-decode")
		}
	})
}
