package h5lite

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math"
	"os"
	"strings"
	"testing"
)

// goldenFile builds the fixture whose serialized bytes are pinned
// below: nested groups, special floats (NaN, ±Inf, -0), an empty
// dataset, an empty group, unicode-free SMILES strings and an empty
// string element.
func goldenFile() *File {
	f := New()
	dock := f.Root().Group("dock")
	t1 := dock.Group("protease1")
	t1.SetFloats("scores", []float64{-7.25, -6.5, math.NaN(), math.Inf(1), math.Inf(-1), 0})
	t1.SetStrings("ligands", []string{"CC(=O)N", "c1ccccc1", ""})
	t1.SetFloats("empty", nil)
	dock.Group("protease2")
	meta := f.Root().Group("meta")
	meta.SetStrings("note", []string{"golden"})
	return f
}

// goldenV1Hex pins the legacy v1 layout byte-for-byte. Shards written
// before the durability PR are exactly this shape; if this constant
// ever fails to decode, read-compat is broken.
const goldenV1Hex = "48354c495445303101010000002f0104000000646f636b010900000070726f7465617365310305000000656d7074790000000000000000030600000073636f72657306000000000000000000000000001dc00000000000001ac0010000000000f87f000000000000f07f000000000000f0ff000000000000000004070000006c6967616e64730300000000000000070000004343283d4f294e0800000063316363636363310000000002010900000070726f746561736532020201040000006d65746104040000006e6f7465010000000000000006000000676f6c64656e0202"

// goldenV2Hex pins the v2 layout: same record stream plus per-dataset
// CRC32C sections and the whole-file trailer.
const goldenV2Hex = "48354c495445303201010000002f0104000000646f636b010900000070726f7465617365310305000000656d707479000000000000000006241132030600000073636f72657306000000000000000000000000001dc00000000000001ac0010000000000f87f000000000000f07f000000000000f0ff0000000000000000f42c122f04070000006c6967616e64730300000000000000070000004343283d4f294e0800000063316363636363310000000065892fed02010900000070726f746561736532020201040000006d65746104040000006e6f7465010000000000000006000000676f6c64656e0e50f7ab020205f000000000000000d6e07797"

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad golden hex: %v", err)
	}
	return b
}

// filesEqual compares two containers structurally, comparing floats
// by bit pattern so NaN payloads round-trip exactly.
func filesEqual(a, b *File) bool {
	return groupsEqual(a.root, b.root)
}

func groupsEqual(a, b *Group) bool {
	if a.name != b.name {
		return false
	}
	if len(a.children) != len(b.children) || len(a.floats) != len(b.floats) || len(a.strings) != len(b.strings) {
		return false
	}
	for name, av := range a.floats {
		bv, ok := b.floats[name]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				return false
			}
		}
	}
	for name, av := range a.strings {
		bv, ok := b.strings[name]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	for name, ac := range a.children {
		bc, ok := b.children[name]
		if !ok || !groupsEqual(ac, bc) {
			return false
		}
	}
	return true
}

func TestGoldenV1BytesStable(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenFile().WriteV1(&buf); err != nil {
		t.Fatalf("WriteV1: %v", err)
	}
	if got := hex.EncodeToString(buf.Bytes()); got != goldenV1Hex {
		t.Fatalf("v1 writer output drifted from golden bytes:\n got %s\nwant %s", got, goldenV1Hex)
	}
}

func TestGoldenV2BytesStable(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenFile().Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := hex.EncodeToString(buf.Bytes()); got != goldenV2Hex {
		t.Fatalf("v2 writer output drifted from golden bytes:\n got %s\nwant %s", got, goldenV2Hex)
	}
}

// TestReadCompatV1Golden is the read-compat pin: the checked-in v1
// byte stream (written before checksums existed) must keep decoding
// to exactly the golden content.
func TestReadCompatV1Golden(t *testing.T) {
	f, err := Read(bytes.NewReader(mustHex(t, goldenV1Hex)))
	if err != nil {
		t.Fatalf("reading pinned v1 bytes: %v", err)
	}
	if !filesEqual(f, goldenFile()) {
		t.Fatal("pinned v1 bytes decoded to different content")
	}
}

func TestReadV2Golden(t *testing.T) {
	f, err := Read(bytes.NewReader(mustHex(t, goldenV2Hex)))
	if err != nil {
		t.Fatalf("reading pinned v2 bytes: %v", err)
	}
	if !filesEqual(f, goldenFile()) {
		t.Fatal("pinned v2 bytes decoded to different content")
	}
}

// TestBitFlipSweepV2 flips every bit of every byte of a valid v2
// stream and requires the decoder to reject each mutant: no single
// bit flip anywhere in the file may ever decode silently.
func TestBitFlipSweepV2(t *testing.T) {
	orig := mustHex(t, goldenV2Hex)
	for i := range orig {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), orig...)
			mut[i] ^= 1 << bit
			f, err := Read(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("bit %d of byte %d flipped: decoded without error", bit, i)
			}
			if f != nil {
				t.Fatalf("bit %d of byte %d flipped: non-nil file returned with error", bit, i)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit %d of byte %d flipped: error does not wrap ErrCorrupt: %v", bit, i, err)
			}
		}
	}
}

// TestTruncationSweepV2 checks every proper prefix of a v2 stream is
// rejected — a torn write can stop at any byte.
func TestTruncationSweepV2(t *testing.T) {
	orig := mustHex(t, goldenV2Hex)
	for n := 0; n < len(orig); n++ {
		if _, err := Read(bytes.NewReader(orig[:n])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d/%d bytes: want ErrCorrupt, got %v", n, len(orig), err)
		}
	}
}

func TestTrailingGarbageV2Rejected(t *testing.T) {
	data := append(mustHex(t, goldenV2Hex), 0x00)
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: want ErrCorrupt, got %v", err)
	}
}

// TestCorruptErrorNamesFileSectionOffset checks the typed report
// carries enough to point a human at the damage.
func TestCorruptErrorNamesFileSectionOffset(t *testing.T) {
	orig := mustHex(t, goldenV2Hex)
	// Flip a byte inside the "scores" float payload (the NaN word sits
	// well inside the first dataset's payload region).
	mut := append([]byte(nil), orig...)
	idx := bytes.Index(mut, []byte("scores"))
	if idx < 0 {
		t.Fatal("golden bytes lost the scores dataset")
	}
	mut[idx+20] ^= 0x40
	_, err := Decode("/campaign/shards/protease1_c000_s00.h5l", mut)
	if err == nil {
		t.Fatal("corrupted payload decoded without error")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %T: %v", err, err)
	}
	if ce.Path != "/campaign/shards/protease1_c000_s00.h5l" {
		t.Fatalf("CorruptError.Path = %q", ce.Path)
	}
	if !strings.Contains(ce.Section, "scores") {
		t.Fatalf("CorruptError.Section = %q, want it to name the damaged dataset", ce.Section)
	}
	if ce.Offset <= 0 {
		t.Fatalf("CorruptError.Offset = %d, want positive", ce.Offset)
	}
	if !strings.Contains(err.Error(), "protease1_c000_s00.h5l") {
		t.Fatalf("error text %q does not name the file", err)
	}
}

// TestSpecialFloatsRoundTripBothVersions pins NaN, ±Inf and signed
// zero through both format versions, comparing bit patterns.
func TestSpecialFloatsRoundTripBothVersions(t *testing.T) {
	special := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), 0,
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64,
	}
	f := New()
	f.Root().Group("t").SetFloats("v", special)
	for _, tc := range []struct {
		name  string
		write func(*File, *bytes.Buffer) error
	}{
		{"v1", func(f *File, b *bytes.Buffer) error { return f.WriteV1(b) }},
		{"v2", func(f *File, b *bytes.Buffer) error { return f.Write(b) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.write(f, &buf); err != nil {
				t.Fatalf("write: %v", err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			v, ok := got.Root().Lookup("t").Floats("v")
			if !ok || len(v) != len(special) {
				t.Fatalf("dataset lost: ok=%v len=%d", ok, len(v))
			}
			for i := range special {
				if math.Float64bits(v[i]) != math.Float64bits(special[i]) {
					t.Fatalf("element %d: bits %016x != %016x", i, math.Float64bits(v[i]), math.Float64bits(special[i]))
				}
			}
		})
	}
}

// TestEmptyShapesRoundTripBothVersions covers empty datasets, empty
// groups and a fully empty file at both format versions.
func TestEmptyShapesRoundTripBothVersions(t *testing.T) {
	build := func() *File {
		f := New()
		g := f.Root().Group("empty-group")
		g.SetFloats("no-floats", nil)
		g.SetStrings("no-strings", []string{})
		f.Root().Group("bare")
		return f
	}
	for _, tc := range []struct {
		name  string
		write func(*File, *bytes.Buffer) error
	}{
		{"v1", func(f *File, b *bytes.Buffer) error { return f.WriteV1(b) }},
		{"v2", func(f *File, b *bytes.Buffer) error { return f.Write(b) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.write(build(), &buf); err != nil {
				t.Fatalf("write: %v", err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if !filesEqual(got, build()) {
				t.Fatal("empty shapes did not round-trip")
			}
			if v, ok := got.Root().Lookup("empty-group").Floats("no-floats"); !ok || len(v) != 0 {
				t.Fatalf("empty float dataset: ok=%v len=%d", ok, len(v))
			}
			if v, ok := got.Root().Lookup("empty-group").Strings("no-strings"); !ok || len(v) != 0 {
				t.Fatalf("empty string dataset: ok=%v len=%d", ok, len(v))
			}
			if got.Root().Lookup("bare") == nil {
				t.Fatal("empty group lost")
			}

			var empty bytes.Buffer
			if err := tc.write(New(), &empty); err != nil {
				t.Fatalf("write empty file: %v", err)
			}
			if _, err := Read(&empty); err != nil {
				t.Fatalf("read empty file: %v", err)
			}
		})
	}
}

// TestForgedLengthBoundedAllocation feeds a header that claims a
// multi-gigabyte dataset backed by a few bytes: the decoder must
// error on truncation without attempting the huge allocation.
func TestForgedLengthBoundedAllocation(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magicV1[:])
	buf.WriteByte(tagGroupStart)
	buf.Write([]byte{1, 0, 0, 0, '/'}) // root name "/"
	buf.WriteByte(tagFloats)
	buf.Write([]byte{1, 0, 0, 0, 'x'})                       // dataset name "x"
	buf.Write([]byte{0, 0, 0, 0, 1, 0, 0, 0})                // claim 2^32 floats = 32 GiB
	buf.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 0}) // a few real bytes
	if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged length: want ErrCorrupt, got %v", err)
	}
	// Beyond 2^32 the count itself is rejected as implausible.
	data := buf.Bytes()
	copy(data[len(data)-17:], []byte{0, 0, 0, 0, 0, 1, 0, 0}) // 2^40 floats
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausible length: want ErrCorrupt, got %v", err)
	}
}

func TestReadFileStampsPath(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.h5l"
	if err := os.WriteFile(path, []byte("H5LITE02 but then junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Path != path {
		t.Fatalf("Path = %q, want %q", ce.Path, path)
	}
}
