package h5lite

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	f := New()
	g := f.Root().Group("dock").Group("protease1")
	g.SetFloats("scores", []float64{-7.2, -6.5, math.Pi})
	g.SetStrings("ids", []string{"zinc:1", "zinc:2", "zinc:3"})
	f.Root().Group("meta").SetStrings("targets", []string{"protease1"})

	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2 := back.Root().Lookup("dock", "protease1")
	if g2 == nil {
		t.Fatal("nested group lost")
	}
	scores, ok := g2.Floats("scores")
	if !ok || len(scores) != 3 || scores[2] != math.Pi {
		t.Fatalf("scores = %v", scores)
	}
	ids, ok := g2.Strings("ids")
	if !ok || ids[1] != "zinc:2" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestEmptyFile(t *testing.T) {
	f := New()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Root().Children()) != 0 {
		t.Fatal("empty file has children")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTMAGIC..."))); err == nil {
		t.Fatal("expected error")
	}
}

func TestTruncatedStream(t *testing.T) {
	f := New()
	f.Root().Group("a").SetFloats("x", []float64{1, 2, 3})
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{9, len(data) / 2, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestGroupIdempotent(t *testing.T) {
	f := New()
	a := f.Root().Group("g")
	b := f.Root().Group("g")
	if a != b {
		t.Fatal("Group must return the existing child")
	}
}

func TestLookupMissing(t *testing.T) {
	f := New()
	if f.Root().Lookup("nope") != nil {
		t.Fatal("missing lookup must be nil")
	}
	if f.Root().Lookup() != f.Root() {
		t.Fatal("empty lookup must return the group itself")
	}
}

func TestSetCopiesData(t *testing.T) {
	f := New()
	v := []float64{1, 2}
	f.Root().SetFloats("x", v)
	v[0] = 99
	got, _ := f.Root().Floats("x")
	if got[0] != 1 {
		t.Fatal("SetFloats must copy")
	}
}

func TestNamesSorted(t *testing.T) {
	f := New()
	f.Root().SetFloats("b", nil)
	f.Root().SetFloats("a", nil)
	names := f.Root().FloatNames()
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	f.Root().Group("z")
	f.Root().Group("y")
	ch := f.Root().Children()
	if ch[0] != "y" {
		t.Fatalf("children = %v", ch)
	}
}

// Property: arbitrary float vectors survive the round trip bit-exact.
func TestRoundTripProperty(t *testing.T) {
	fn := func(vals []float64, names []string) bool {
		f := New()
		g := f.Root().Group("g")
		g.SetFloats("v", vals)
		// sanitize names into a string dataset
		strs := make([]string, len(names))
		copy(strs, names)
		g.SetStrings("s", strs)
		var buf bytes.Buffer
		if err := f.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		got, _ := back.Root().Lookup("g").Floats("v")
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		gs, _ := back.Root().Lookup("g").Strings("s")
		if len(gs) != len(strs) {
			return false
		}
		for i := range strs {
			if gs[i] != strs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepNesting(t *testing.T) {
	f := New()
	g := f.Root()
	for i := 0; i < 20; i++ {
		g = g.Group("level")
	}
	g.SetFloats("x", []float64{42})
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cur := back.Root()
	for i := 0; i < 20; i++ {
		cur = cur.Lookup("level")
		if cur == nil {
			t.Fatalf("lost nesting at depth %d", i)
		}
	}
	v, ok := cur.Floats("x")
	if !ok || v[0] != 42 {
		t.Fatal("deep dataset lost")
	}
}

func TestOverwriteDataset(t *testing.T) {
	f := New()
	f.Root().SetFloats("x", []float64{1})
	f.Root().SetFloats("x", []float64{2, 3})
	v, _ := f.Root().Floats("x")
	if len(v) != 2 || v[0] != 2 {
		t.Fatal("overwrite failed")
	}
}

func TestUnicodeStrings(t *testing.T) {
	f := New()
	f.Root().SetStrings("s", []string{"molécule", "化合物", ""})
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := back.Root().Strings("s")
	if s[0] != "molécule" || s[1] != "化合物" || s[2] != "" {
		t.Fatalf("unicode strings corrupted: %v", s)
	}
}
