// Package h5lite implements a minimal hierarchical binary container in
// the spirit of HDF5: named groups containing named datasets of
// float64 vectors or string vectors. The screening pipeline writes its
// predictions in this format, mirroring the paper's HDF5 output that
// was designed to match ConveyorLC's CDT3Docking layout so existing
// downstream tools could read Fusion scores.
//
// Format versions. v1 ("H5LITE01") is the original tagged record
// stream with no integrity protection. v2 ("H5LITE02"), the default
// since the durability PR, carries the same record stream plus a
// CRC32C (Castagnoli) after every dataset section and a whole-file
// trailer (record-stream byte count + CRC), so truncation, torn
// writes and bit flips are detected on read instead of surfacing as
// obscure decode errors — or worse, silently wrong floats. Read
// auto-detects the version; v1 files stay readable forever (the
// byte-exact v1 layout is pinned by a golden test). Corruption is
// reported as a *CorruptError wrapping ErrCorrupt, naming the file,
// section and byte offset — never returned as a silently wrong value.
package h5lite

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
)

// File is an in-memory hierarchical container.
type File struct {
	root *Group
}

// Group is a node holding datasets and child groups.
type Group struct {
	name     string
	children map[string]*Group
	floats   map[string][]float64
	strings  map[string][]string
}

// New creates an empty container.
func New() *File {
	return &File{root: newGroup("/")}
}

func newGroup(name string) *Group {
	return &Group{
		name:     name,
		children: map[string]*Group{},
		floats:   map[string][]float64{},
		strings:  map[string][]string{},
	}
}

// Root returns the root group.
func (f *File) Root() *Group { return f.root }

// Group returns (creating if needed) the child group with the given
// name.
func (g *Group) Group(name string) *Group {
	if c, ok := g.children[name]; ok {
		return c
	}
	c := newGroup(name)
	g.children[name] = c
	return c
}

// Lookup walks a /-separated path from this group, returning nil when
// any component is missing.
func (g *Group) Lookup(path ...string) *Group {
	cur := g
	for _, p := range path {
		next, ok := cur.children[p]
		if !ok {
			return nil
		}
		cur = next
	}
	return cur
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// Children returns child group names in sorted order.
func (g *Group) Children() []string {
	var out []string
	for k := range g.children {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SetFloats stores a float64 dataset.
func (g *Group) SetFloats(name string, v []float64) {
	g.floats[name] = append([]float64(nil), v...)
}

// Floats returns a float64 dataset and whether it exists.
func (g *Group) Floats(name string) ([]float64, bool) {
	v, ok := g.floats[name]
	return v, ok
}

// SetStrings stores a string dataset.
func (g *Group) SetStrings(name string, v []string) {
	g.strings[name] = append([]string(nil), v...)
}

// Strings returns a string dataset and whether it exists.
func (g *Group) Strings(name string) ([]string, bool) {
	v, ok := g.strings[name]
	return v, ok
}

// FloatNames lists float dataset names in sorted order.
func (g *Group) FloatNames() []string {
	var out []string
	for k := range g.floats {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StringNames lists string dataset names in sorted order.
func (g *Group) StringNames() []string {
	var out []string
	for k := range g.strings {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var (
	magicV1 = [8]byte{'H', '5', 'L', 'I', 'T', 'E', '0', '1'}
	magicV2 = [8]byte{'H', '5', 'L', 'I', 'T', 'E', '0', '2'}
)

// Record type tags in the serialized stream.
const (
	tagGroupStart = byte(1)
	tagGroupEnd   = byte(2)
	tagFloats     = byte(3)
	tagStrings    = byte(4)
	// tagTrailer closes a v2 stream: tag, uint64 byte count of
	// everything before the trailer, uint32 CRC32C of those bytes.
	tagTrailer = byte(5)
)

// castagnoli is the CRC32C polynomial table; hardware-accelerated on
// amd64/arm64, which is what keeps verification off the throughput
// critical path (see BENCH_10).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel every integrity failure wraps: bad CRC,
// truncation, implausible lengths, unknown tags, trailing garbage.
// Callers that must distinguish "the file is damaged" from "the file
// is absent or unreadable at the filesystem level" test
// errors.Is(err, h5lite.ErrCorrupt).
var ErrCorrupt = errors.New("h5lite: corrupt")

// CorruptError reports a damaged container: which file (empty for a
// bare stream), which section of the layout, the byte offset where
// the damage was detected, and what was wrong. It wraps ErrCorrupt.
type CorruptError struct {
	Path    string // file path, when known
	Section string // e.g. `dataset "dock/protease1/scores"`, "file trailer"
	Offset  int64  // stream offset where the problem was detected
	Reason  string
}

func (e *CorruptError) Error() string {
	at := ""
	if e.Path != "" {
		at = e.Path + ": "
	}
	return fmt.Sprintf("h5lite: corrupt: %s%s at offset %d: %s", at, e.Section, e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorrupt) true for every CorruptError.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Write serializes the container in the current format (v2): the v1
// record stream plus per-dataset CRC32C sections and a whole-file
// trailer.
func (f *File) Write(w io.Writer) error {
	return f.writeVersion(w, 2)
}

// WriteV1 serializes the container in the legacy v1 format (no
// checksums). It exists for the v1 read-compat golden test and the
// before/after-CRC integrity benchmark; production writers use Write.
func (f *File) WriteV1(w io.Writer) error {
	return f.writeVersion(w, 1)
}

// writeVersion serializes the container into one contiguous buffer
// and flushes it with a single Write. Working in one buffer is what
// keeps the v2 checksums nearly free (BENCH_10): every CRC — one per
// dataset section, one for the whole file — is a single bulk
// crc32.Checksum over a contiguous span, hardware-accelerated on
// amd64/arm64, instead of thousands of per-field Update calls.
func (f *File) writeVersion(w io.Writer, version int) error {
	v2 := version == 2
	magic := magicV1
	if v2 {
		magic = magicV2
	}
	buf := append(make([]byte, 0, 1<<16), magic[:]...)
	buf = appendGroup(buf, f.root, v2)
	if v2 {
		// Trailer: everything before it — magic, records, section CRCs
		// — is covered by the whole-file CRC, so any truncation or flip
		// the section CRCs miss (group structure, the CRCs themselves)
		// is still caught.
		payloadLen := uint64(len(buf))
		wholeCRC := crc32.Checksum(buf, castagnoli)
		buf = append(buf, tagTrailer)
		buf = binary.LittleEndian.AppendUint64(buf, payloadLen)
		buf = binary.LittleEndian.AppendUint32(buf, wholeCRC)
	}
	_, err := w.Write(buf)
	return err
}

// appendSectionCRC closes the dataset section that started at off:
// the v2 section CRC covers tag + name + count + payload, end to end.
func appendSectionCRC(buf []byte, off int, v2 bool) []byte {
	if !v2 {
		return buf
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[off:], castagnoli))
}

func appendGroup(buf []byte, g *Group, v2 bool) []byte {
	buf = append(buf, tagGroupStart)
	buf = appendString(buf, g.name)
	for _, name := range g.FloatNames() {
		off := len(buf)
		buf = append(buf, tagFloats)
		buf = appendString(buf, name)
		v := g.floats[name]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v)))
		for _, x := range v {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
		buf = appendSectionCRC(buf, off, v2)
	}
	for _, name := range g.StringNames() {
		off := len(buf)
		buf = append(buf, tagStrings)
		buf = appendString(buf, name)
		v := g.strings[name]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v)))
		for _, s := range v {
			buf = appendString(buf, s)
		}
		buf = appendSectionCRC(buf, off, v2)
	}
	for _, name := range g.Children() {
		buf = appendGroup(buf, g.children[name], v2)
	}
	return append(buf, tagGroupEnd)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// Read deserializes a container written by Write (v2) or the legacy
// v1 writer, auto-detected from the magic. Any structural damage —
// bad magic, truncation, CRC mismatch, implausible lengths, unknown
// tags, trailing garbage — returns a *CorruptError; the decoder never
// panics and never allocates more memory than the input actually
// provides, on any input (pinned by FuzzRead).
func Read(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decode(data, "")
}

// Decode deserializes a container from an in-memory byte slice,
// stamping path into any CorruptError — the campaign layer reads
// shard files through this so integrity reports name the file.
func Decode(path string, data []byte) (*File, error) {
	return decode(data, path)
}

// ReadFile loads a container from disk, naming the file in any
// corruption report.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(path, data)
}

// decoder walks the in-memory stream by offset. On the happy path a
// v2 file is verified with a single bulk crc32.Checksum over the
// whole record stream — which covers every dataset byte and every
// stored section CRC, so no corruption can slip past it — and the
// per-section CRCs are only recomputed after that check fails, to
// localize the damage to a named dataset. One hardware-speed pass
// instead of two is what keeps v2 verification within a few percent
// of the v1 parse (BENCH_10); the localization re-walk runs only on
// files that are already known to be corrupt.
type decoder struct {
	data []byte
	pos  int
	path string
	v2   bool
	// verifySections turns on per-dataset CRC comparison during the
	// walk; set only for the localization pass after a whole-file
	// CRC mismatch.
	verifySections bool
}

// corruptf builds the typed corruption report at the current offset.
func (d *decoder) corruptf(section, format string, args ...any) error {
	return &CorruptError{
		Path:    d.path,
		Section: section,
		Offset:  int64(d.pos),
		Reason:  fmt.Sprintf(format, args...),
	}
}

// take consumes exactly n bytes of the stream, translating short
// input into a typed truncation report for the named section. Because
// the bound is checked against the bytes actually present, a forged
// length field can never force an allocation larger than the input.
func (d *decoder) take(n uint64, section string) ([]byte, error) {
	rem := uint64(len(d.data) - d.pos)
	if rem < n {
		d.pos = len(d.data)
		cause := io.ErrUnexpectedEOF
		if rem == 0 {
			cause = io.EOF
		}
		return nil, d.corruptf(section, "truncated: %v", cause)
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

func (d *decoder) readByte(section string) (byte, error) {
	b, err := d.take(1, section)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) readUint32(section string) (uint32, error) {
	b, err := d.take(4, section)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) readUint64(section string) (uint64, error) {
	b, err := d.take(8, section)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) readString(section string) (string, error) {
	n, err := d.readUint32(section)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", d.corruptf(section, "implausible string length %d", n)
	}
	buf, err := d.take(uint64(n), section)
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

func decode(data []byte, path string) (*File, error) {
	d := &decoder{data: data, path: path}
	m, err := d.take(8, "magic")
	if err != nil {
		return nil, err
	}
	switch {
	case bytes.Equal(m, magicV1[:]):
	case bytes.Equal(m, magicV2[:]):
		d.v2 = true
	default:
		return nil, d.corruptf("magic", "bad magic %q", m)
	}
	tag, err := d.readByte("root group")
	if err != nil {
		return nil, err
	}
	if tag != tagGroupStart {
		return nil, d.corruptf("root group", "missing root group (tag %d)", tag)
	}
	root, err := d.readGroup("")
	if err != nil {
		return nil, err
	}
	f := &File{root: root}
	if !d.v2 {
		return f, nil
	}
	// Verify the trailer: the recorded record-stream length and CRC
	// must match what was just read, and nothing may follow. The
	// whole-file CRC covers magic, records and section CRCs alike.
	payloadLen := uint64(d.pos)
	tag, err = d.readByte("file trailer")
	if err != nil {
		return nil, err
	}
	if tag != tagTrailer {
		return nil, d.corruptf("file trailer", "expected trailer tag %d, got %d", tagTrailer, tag)
	}
	wantLen, err := d.readUint64("file trailer")
	if err != nil {
		return nil, err
	}
	wantCRC, err := d.readUint32("file trailer")
	if err != nil {
		return nil, err
	}
	if wantLen != payloadLen {
		return nil, d.corruptf("file trailer", "record stream is %d bytes, trailer records %d", payloadLen, wantLen)
	}
	if wholeCRC := crc32.Checksum(d.data[:payloadLen], castagnoli); wantCRC != wholeCRC {
		// The file is corrupt; re-walk it comparing per-section CRCs
		// so the report names the damaged dataset when one is
		// identifiable, falling back to the whole-file mismatch for
		// damage outside any dataset section.
		if err := localizeCorruption(data, path); err != nil {
			return nil, err
		}
		return nil, d.corruptf("file trailer", "whole-file CRC32C mismatch: computed %08x, stored %08x", wholeCRC, wantCRC)
	}
	if d.pos != len(d.data) {
		return nil, d.corruptf("file trailer", "trailing garbage after trailer")
	}
	return f, nil
}

// localizeCorruption re-walks a stream whose whole-file CRC already
// failed, this time comparing every stored section CRC, and returns
// the first per-dataset mismatch (or structural error) it finds. A
// nil return means no individual section disagrees — the damage is in
// structural bytes, a stored CRC of the trailer, or the trailer
// itself — and the caller reports the whole-file mismatch instead.
func localizeCorruption(data []byte, path string) error {
	d := &decoder{data: data, path: path, v2: true, verifySections: true}
	d.pos = len(magicV2) // the magic matched or we would not be here
	tag, err := d.readByte("root group")
	if err != nil || tag != tagGroupStart {
		return nil
	}
	if _, err := d.readGroup(""); err != nil {
		return err
	}
	return nil
}

// readGroup decodes one group's records. groupPath is the
// /-separated ancestry used to name sections in corruption reports.
func (d *decoder) readGroup(groupPath string) (*Group, error) {
	section := fmt.Sprintf("group %q", groupPath)
	name, err := d.readString(section)
	if err != nil {
		return nil, err
	}
	if groupPath == "" {
		groupPath = name
	} else {
		groupPath = groupPath + "/" + name
	}
	section = fmt.Sprintf("group %q", groupPath)
	g := newGroup(name)
	for {
		tag, err := d.readByte(section)
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagGroupEnd:
			return g, nil
		case tagGroupStart:
			child, err := d.readGroup(groupPath)
			if err != nil {
				return nil, err
			}
			g.children[child.name] = child
		case tagFloats, tagStrings:
			if err := d.readDataset(g, tag, groupPath); err != nil {
				return nil, err
			}
		default:
			return nil, d.corruptf(section, "unknown record tag %d", tag)
		}
	}
}

// readDataset decodes one dataset record (tag already consumed) and,
// for v2, verifies its section CRC — which covers the tag byte, the
// name, the count and the payload.
func (d *decoder) readDataset(g *Group, tag byte, groupPath string) error {
	// The section CRC spans from the tag byte (already consumed)
	// through the end of the payload; remember where it started so it
	// can be verified with one bulk Checksum at the end.
	start := d.pos - 1
	kind := "floats"
	if tag == tagStrings {
		kind = "strings"
	}
	section := fmt.Sprintf("dataset %q (%s)", groupPath, kind)
	dname, err := d.readString(section)
	if err != nil {
		return err
	}
	section = fmt.Sprintf("dataset %q (%s)", groupPath+"/"+dname, kind)
	n, err := d.readUint64(section)
	if err != nil {
		return err
	}
	if n > 1<<32 {
		return d.corruptf(section, "implausible dataset length %d", n)
	}
	switch tag {
	case tagFloats:
		buf, err := d.take(8*n, section)
		if err != nil {
			return err
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		g.floats[dname] = v
	case tagStrings:
		cap := n
		if cap > 4096 {
			cap = 4096
		}
		v := make([]string, 0, cap)
		for i := uint64(0); i < n; i++ {
			s, err := d.readString(section)
			if err != nil {
				return err
			}
			v = append(v, s)
		}
		g.strings[dname] = v
	}
	if d.v2 {
		end := d.pos
		want, err := d.readUint32(section)
		if err != nil {
			return err
		}
		if d.verifySections {
			if got := crc32.Checksum(d.data[start:end], castagnoli); got != want {
				return d.corruptf(section, "section CRC32C mismatch: computed %08x, stored %08x", got, want)
			}
		}
	}
	return nil
}
