// Package h5lite implements a minimal hierarchical binary container in
// the spirit of HDF5: named groups containing named datasets of
// float64 vectors or string vectors. The screening pipeline writes its
// predictions in this format, mirroring the paper's HDF5 output that
// was designed to match ConveyorLC's CDT3Docking layout so existing
// downstream tools could read Fusion scores.
package h5lite

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// File is an in-memory hierarchical container.
type File struct {
	root *Group
}

// Group is a node holding datasets and child groups.
type Group struct {
	name     string
	children map[string]*Group
	floats   map[string][]float64
	strings  map[string][]string
}

// New creates an empty container.
func New() *File {
	return &File{root: newGroup("/")}
}

func newGroup(name string) *Group {
	return &Group{
		name:     name,
		children: map[string]*Group{},
		floats:   map[string][]float64{},
		strings:  map[string][]string{},
	}
}

// Root returns the root group.
func (f *File) Root() *Group { return f.root }

// Group returns (creating if needed) the child group with the given
// name.
func (g *Group) Group(name string) *Group {
	if c, ok := g.children[name]; ok {
		return c
	}
	c := newGroup(name)
	g.children[name] = c
	return c
}

// Lookup walks a /-separated path from this group, returning nil when
// any component is missing.
func (g *Group) Lookup(path ...string) *Group {
	cur := g
	for _, p := range path {
		next, ok := cur.children[p]
		if !ok {
			return nil
		}
		cur = next
	}
	return cur
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// Children returns child group names in sorted order.
func (g *Group) Children() []string {
	var out []string
	for k := range g.children {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SetFloats stores a float64 dataset.
func (g *Group) SetFloats(name string, v []float64) {
	g.floats[name] = append([]float64(nil), v...)
}

// Floats returns a float64 dataset and whether it exists.
func (g *Group) Floats(name string) ([]float64, bool) {
	v, ok := g.floats[name]
	return v, ok
}

// SetStrings stores a string dataset.
func (g *Group) SetStrings(name string, v []string) {
	g.strings[name] = append([]string(nil), v...)
}

// Strings returns a string dataset and whether it exists.
func (g *Group) Strings(name string) ([]string, bool) {
	v, ok := g.strings[name]
	return v, ok
}

// FloatNames lists float dataset names in sorted order.
func (g *Group) FloatNames() []string {
	var out []string
	for k := range g.floats {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StringNames lists string dataset names in sorted order.
func (g *Group) StringNames() []string {
	var out []string
	for k := range g.strings {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var magic = [8]byte{'H', '5', 'L', 'I', 'T', 'E', '0', '1'}

// Record type tags in the serialized stream.
const (
	tagGroupStart = byte(1)
	tagGroupEnd   = byte(2)
	tagFloats     = byte(3)
	tagStrings    = byte(4)
)

// Write serializes the container.
func (f *File) Write(w io.Writer) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	return writeGroup(w, f.root)
}

func writeGroup(w io.Writer, g *Group) error {
	if err := writeByte(w, tagGroupStart); err != nil {
		return err
	}
	if err := writeString(w, g.name); err != nil {
		return err
	}
	for _, name := range g.FloatNames() {
		if err := writeByte(w, tagFloats); err != nil {
			return err
		}
		if err := writeString(w, name); err != nil {
			return err
		}
		v := g.floats[name]
		if err := binary.Write(w, binary.LittleEndian, uint64(len(v))); err != nil {
			return err
		}
		buf := make([]byte, 8*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	for _, name := range g.StringNames() {
		if err := writeByte(w, tagStrings); err != nil {
			return err
		}
		if err := writeString(w, name); err != nil {
			return err
		}
		v := g.strings[name]
		if err := binary.Write(w, binary.LittleEndian, uint64(len(v))); err != nil {
			return err
		}
		for _, s := range v {
			if err := writeString(w, s); err != nil {
				return err
			}
		}
	}
	for _, name := range g.Children() {
		if err := writeGroup(w, g.children[name]); err != nil {
			return err
		}
	}
	return writeByte(w, tagGroupEnd)
}

// Read deserializes a container written by Write.
func Read(r io.Reader) (*File, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, errors.New("h5lite: bad magic")
	}
	tag, err := readByte(r)
	if err != nil {
		return nil, err
	}
	if tag != tagGroupStart {
		return nil, errors.New("h5lite: missing root group")
	}
	root, err := readGroup(r)
	if err != nil {
		return nil, err
	}
	return &File{root: root}, nil
}

func readGroup(r io.Reader) (*Group, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	g := newGroup(name)
	for {
		tag, err := readByte(r)
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagGroupEnd:
			return g, nil
		case tagGroupStart:
			child, err := readGroup(r)
			if err != nil {
				return nil, err
			}
			g.children[child.name] = child
		case tagFloats:
			dname, err := readString(r)
			if err != nil {
				return nil, err
			}
			var n uint64
			if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
				return nil, err
			}
			if n > 1<<32 {
				return nil, fmt.Errorf("h5lite: implausible dataset length %d", n)
			}
			buf := make([]byte, 8*n)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			v := make([]float64, n)
			for i := range v {
				v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
			}
			g.floats[dname] = v
		case tagStrings:
			dname, err := readString(r)
			if err != nil {
				return nil, err
			}
			var n uint64
			if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
				return nil, err
			}
			if n > 1<<32 {
				return nil, fmt.Errorf("h5lite: implausible dataset length %d", n)
			}
			v := make([]string, n)
			for i := range v {
				s, err := readString(r)
				if err != nil {
					return nil, err
				}
				v[i] = s
			}
			g.strings[dname] = v
		default:
			return nil, fmt.Errorf("h5lite: unknown record tag %d", tag)
		}
	}
}

func writeByte(w io.Writer, b byte) error {
	_, err := w.Write([]byte{b})
	return err
}

func readByte(r io.Reader) (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(r, b[:])
	return b[0], err
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("h5lite: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
