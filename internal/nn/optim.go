package nn

import "math"

// Optimizer applies gradient updates to a fixed set of parameters. The
// four optimizers offered to the hyper-parameter search in Table 1 are
// implemented: Adam, AdamW, RMSprop and Adadelta.
type Optimizer interface {
	// Step applies one update using the parameters' accumulated
	// gradients and clears them afterwards.
	Step()
	// SetLR changes the learning rate (used by PB2 schedules). Adadelta
	// ignores it.
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

type adamState struct {
	m, v []float64
}

// Adam implements Kingma & Ba 2014; with DecoupledWD > 0 it becomes
// AdamW (Loshchilov & Hutter 2017).
type Adam struct {
	Params      []*Param
	Rate        float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	DecoupledWD float64

	t     int
	state []adamState
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(params []*Param, lr float64) *Adam {
	return newAdamLike(params, lr, 0)
}

// NewAdamW constructs an AdamW optimizer with decoupled weight decay wd.
func NewAdamW(params []*Param, lr, wd float64) *Adam {
	return newAdamLike(params, lr, wd)
}

func newAdamLike(params []*Param, lr, wd float64) *Adam {
	a := &Adam{
		Params:      params,
		Rate:        lr,
		Beta1:       0.9,
		Beta2:       0.999,
		Eps:         1e-8,
		DecoupledWD: wd,
		state:       make([]adamState, len(params)),
	}
	for i, p := range params {
		a.state[i] = adamState{m: make([]float64, p.Value.Len()), v: make([]float64, p.Value.Len())}
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.Params {
		st := a.state[i]
		for j, g := range p.Grad.Data {
			st.m[j] = a.Beta1*st.m[j] + (1-a.Beta1)*g
			st.v[j] = a.Beta2*st.v[j] + (1-a.Beta2)*g*g
			mh := st.m[j] / bc1
			vh := st.v[j] / bc2
			p.Value.Data[j] -= a.Rate * (mh/(math.Sqrt(vh)+a.Eps) + a.DecoupledWD*p.Value.Data[j])
		}
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.Rate = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.Rate }

// RMSprop implements the moving-average-of-squared-gradients update
// (Graves 2013 variant without momentum).
type RMSprop struct {
	Params []*Param
	Rate   float64
	Decay  float64
	Eps    float64

	sq [][]float64
}

// NewRMSprop constructs an RMSprop optimizer with decay 0.99.
func NewRMSprop(params []*Param, lr float64) *RMSprop {
	r := &RMSprop{Params: params, Rate: lr, Decay: 0.99, Eps: 1e-8, sq: make([][]float64, len(params))}
	for i, p := range params {
		r.sq[i] = make([]float64, p.Value.Len())
	}
	return r
}

// Step implements Optimizer.
func (r *RMSprop) Step() {
	for i, p := range r.Params {
		sq := r.sq[i]
		for j, g := range p.Grad.Data {
			sq[j] = r.Decay*sq[j] + (1-r.Decay)*g*g
			p.Value.Data[j] -= r.Rate * g / (math.Sqrt(sq[j]) + r.Eps)
		}
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (r *RMSprop) SetLR(lr float64) { r.Rate = lr }

// LR implements Optimizer.
func (r *RMSprop) LR() float64 { return r.Rate }

// Adadelta implements Zeiler's learning-rate-free update (the paper's
// Table 1 cites Duchi et al.'s adaptive-subgradient family).
type Adadelta struct {
	Params []*Param
	Rho    float64
	Eps    float64

	accG, accD [][]float64
}

// NewAdadelta constructs an Adadelta optimizer with rho 0.95.
func NewAdadelta(params []*Param) *Adadelta {
	a := &Adadelta{Params: params, Rho: 0.95, Eps: 1e-6,
		accG: make([][]float64, len(params)), accD: make([][]float64, len(params))}
	for i, p := range params {
		a.accG[i] = make([]float64, p.Value.Len())
		a.accD[i] = make([]float64, p.Value.Len())
	}
	return a
}

// Step implements Optimizer.
func (a *Adadelta) Step() {
	for i, p := range a.Params {
		ag, ad := a.accG[i], a.accD[i]
		for j, g := range p.Grad.Data {
			ag[j] = a.Rho*ag[j] + (1-a.Rho)*g*g
			upd := math.Sqrt(ad[j]+a.Eps) / math.Sqrt(ag[j]+a.Eps) * g
			ad[j] = a.Rho*ad[j] + (1-a.Rho)*upd*upd
			p.Value.Data[j] -= upd
		}
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer; Adadelta has no global rate, so it is a
// no-op.
func (a *Adadelta) SetLR(lr float64) {}

// LR implements Optimizer.
func (a *Adadelta) LR() float64 { return 1 }

// NewOptimizer constructs an optimizer by Table 1 name: "adam", "adamw",
// "rmsprop" or "adadelta".
func NewOptimizer(name string, params []*Param, lr float64) Optimizer {
	switch name {
	case "adam":
		return NewAdam(params, lr)
	case "adamw":
		return NewAdamW(params, lr, 1e-4)
	case "rmsprop":
		return NewRMSprop(params, lr)
	case "adadelta":
		return NewAdadelta(params)
	default:
		panic("nn: unknown optimizer " + name)
	}
}
