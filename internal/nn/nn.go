// Package nn implements the neural-network layer framework used by the
// Deep Fusion models: parameterized layers with explicit reverse-mode
// backpropagation, the activations and optimizers listed in Table 1 of
// the paper, and mean-squared-error training utilities.
//
// Layers follow a Forward/Backward contract: a call to Forward caches
// whatever intermediate state Backward needs, and Backward must be
// called at most once per Forward with the gradient of the loss with
// respect to the layer output, returning the gradient with respect to
// the layer input. This mirrors the single-pass training loop of the
// original PyTorch implementation without a general autodiff tape.
package nn

import (
	"math"
	"math/rand"

	"deepfusion/internal/tensor"
)

// Param is a trainable tensor together with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and its gradient buffer with the given
// shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a model.
type Layer interface {
	// Forward computes the layer output for x. When train is true the
	// layer may apply stochastic regularization (dropout) and update
	// running statistics (batch norm).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient with respect to the output of the
	// most recent Forward call, accumulates parameter gradients, and
	// returns the gradient with respect to that Forward's input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters of the layer (possibly
	// empty). The slice must be stable across calls.
	Params() []*Param
}

// Sequential chains layers, feeding each layer's output to the next.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears the gradients of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// GlorotInit fills w (shaped fanOut x fanIn or a conv kernel) with
// Glorot/Xavier-scaled normal values, the initialization used by the
// reference FAST models.
func GlorotInit(rng *rand.Rand, p *Param, fanIn, fanOut int) {
	std := 1.0
	if fanIn+fanOut > 0 {
		std = math.Sqrt(2.0 / float64(fanIn+fanOut))
	}
	p.Value.RandNormal(rng, std)
}
