package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"deepfusion/internal/tensor"
)

// numGrad estimates d(loss)/d(x[i]) by central differences where loss
// is the sum of the layer output (so dLoss/dOut is all ones).
func numGrad(l Layer, x *tensor.Tensor, i int) float64 {
	const eps = 1e-5
	orig := x.Data[i]
	x.Data[i] = orig + eps
	up := l.Forward(x, false).Sum()
	x.Data[i] = orig - eps
	down := l.Forward(x, false).Sum()
	x.Data[i] = orig
	return (up - down) / (2 * eps)
}

func checkInputGrad(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	out := l.Forward(x, false)
	ones := tensor.New(out.Shape...)
	ones.Fill(1)
	dx := l.Backward(ones)
	for i := range x.Data {
		want := numGrad(l, x, i)
		if math.Abs(dx.Data[i]-want) > tol {
			t.Fatalf("input grad[%d] = %v, numeric %v", i, dx.Data[i], want)
		}
	}
}

func checkParamGrad(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	out := l.Forward(x, false)
	ones := tensor.New(out.Shape...)
	ones.Fill(1)
	l.Backward(ones)
	const eps = 1e-5
	for pi, p := range l.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			up := l.Forward(x, false).Sum()
			p.Value.Data[i] = orig - eps
			down := l.Forward(x, false).Sum()
			p.Value.Data[i] = orig
			want := (up - down) / (2 * eps)
			if math.Abs(p.Grad.Data[i]-want) > tol {
				t.Fatalf("param %d grad[%d] = %v, numeric %v", pi, i, p.Grad.Data[i], want)
			}
		}
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 2, 3)
	d.W.Value = tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	d.B.Value = tensor.FromSlice([]float64{0.5, -0.5, 1}, 3)
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x, false)
	want := []float64{3.5, 6.5, 12}
	for i, w := range want {
		if math.Abs(y.Data[i]-w) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(rng, 4, 3)
	x := tensor.New(5, 4)
	x.RandNormal(rng, 1)
	checkInputGrad(t, d, x, 1e-7)
	checkParamGrad(t, d, x, 1e-6)
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range []string{ActReLU, ActLReLU, ActSELU} {
		a := NewActivation(kind)
		x := tensor.New(3, 7)
		x.RandNormal(rng, 1)
		// nudge away from the ReLU kink
		x.Apply(func(v float64) float64 {
			if math.Abs(v) < 1e-3 {
				return v + 0.01
			}
			return v
		})
		checkInputGrad(t, a, x, 1e-6)
	}
}

func TestUnknownActivationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewActivation("swish")
}

func TestSELUSelfNormalizingFixedPoint(t *testing.T) {
	// SELU applied to N(0,1) inputs should keep mean ~0 and var ~1.
	rng := rand.New(rand.NewSource(4))
	a := NewActivation(ActSELU)
	x := tensor.New(1, 50000)
	x.RandNormal(rng, 1)
	y := a.Forward(x, false)
	if m := y.Mean(); math.Abs(m) > 0.05 {
		t.Fatalf("SELU output mean = %v, want ~0", m)
	}
	v := 0.0
	for _, e := range y.Data {
		v += (e - y.Mean()) * (e - y.Mean())
	}
	v /= float64(y.Len())
	if math.Abs(v-1) > 0.1 {
		t.Fatalf("SELU output var = %v, want ~1", v)
	}
}

func TestDropoutEvalIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(rng, 0.5)
	x := tensor.New(2, 10)
	x.RandNormal(rng, 1)
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("dropout must be identity in eval mode")
		}
	}
}

func TestDropoutTrainMaskAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout(rng, 0.5)
	x := tensor.New(1, 10000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros, scaled := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 4500 || zeros > 5500 {
		t.Fatalf("dropout rate off: %d/10000 zeroed", zeros)
	}
	if scaled+zeros != 10000 {
		t.Fatal("dropout output must be 0 or scaled input")
	}
	// Backward must use the same mask.
	g := tensor.New(1, 10000)
	g.Fill(1)
	dg := d.Backward(g)
	for i := range dg.Data {
		if (dg.Data[i] == 0) != (y.Data[i] == 0) {
			t.Fatal("backward mask mismatch")
		}
	}
}

func TestDropoutBadRatePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(rng, 1.0)
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	b := NewBatchNorm(3)
	rng := rand.New(rand.NewSource(8))
	x := tensor.New(64, 3)
	x.RandNormal(rng, 5)
	for i := range x.Data {
		x.Data[i] += 10
	}
	y := b.Forward(x, true)
	for j := 0; j < 3; j++ {
		mean, vari := 0.0, 0.0
		for i := 0; i < 64; i++ {
			mean += y.At(i, j)
		}
		mean /= 64
		for i := 0; i < 64; i++ {
			d := y.At(i, j) - mean
			vari += d * d
		}
		vari /= 64
		if math.Abs(mean) > 1e-9 || math.Abs(vari-1) > 1e-2 {
			t.Fatalf("feature %d: mean %v var %v", j, mean, vari)
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	// Gradient check in eval mode (stats are constants there).
	b := NewBatchNorm(4)
	rng := rand.New(rand.NewSource(9))
	for j := range b.RunMean {
		b.RunMean[j] = rng.NormFloat64()
		b.RunVar[j] = 0.5 + rng.Float64()
	}
	x := tensor.New(3, 4)
	x.RandNormal(rng, 1)
	checkInputGrad(t, b, x, 1e-6)
}

func TestBatchNormTrainBackwardSumsToZero(t *testing.T) {
	// In training mode the per-feature input gradients of batch norm sum
	// to zero when the upstream gradient is constant (mean subtraction).
	b := NewBatchNorm(2)
	rng := rand.New(rand.NewSource(10))
	x := tensor.New(8, 2)
	x.RandNormal(rng, 2)
	out := b.Forward(x, true)
	g := tensor.New(out.Shape...)
	g.Fill(1)
	dx := b.Backward(g)
	for j := 0; j < 2; j++ {
		s := 0.0
		for i := 0; i < 8; i++ {
			s += dx.At(i, j)
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("train-mode dx column %d sums to %v, want 0", j, s)
		}
	}
}

func TestConv3DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewConv3D(rng, 2, 3, 3)
	x := tensor.New(2, 2, 4, 4, 4)
	x.RandNormal(rng, 1)
	checkInputGrad(t, c, x, 1e-6)
	checkParamGrad(t, c, x, 1e-5)
}

func TestConv3DIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := NewConv3D(rng, 1, 1, 3)
	c.W.Value.Zero()
	c.B.Value.Zero()
	c.W.Value.Set(1, 0, 0, 1, 1, 1) // delta kernel at center
	x := tensor.New(1, 1, 3, 3, 3)
	x.RandNormal(rng, 1)
	y := c.Forward(x, false)
	for i := range x.Data {
		if math.Abs(y.Data[i]-x.Data[i]) > 1e-12 {
			t.Fatal("identity kernel must reproduce input")
		}
	}
}

func TestConv3DEvenKernelPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConv3D(rng, 1, 1, 4)
}

func TestMaxPool3DForwardBackward(t *testing.T) {
	m := NewMaxPool3D(2)
	x := tensor.New(1, 1, 2, 2, 2)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	y := m.Forward(x, false)
	if y.Len() != 1 || y.Data[0] != 7 {
		t.Fatalf("maxpool = %v", y.Data)
	}
	g := tensor.FromSlice([]float64{5}, 1, 1, 1, 1, 1)
	dx := m.Backward(g)
	for i, v := range dx.Data {
		want := 0.0
		if i == 7 {
			want = 5
		}
		if v != want {
			t.Fatalf("dx[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestMaxPool3DIndivisiblePanics(t *testing.T) {
	m := NewMaxPool3D(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Forward(tensor.New(1, 1, 3, 3, 3), false)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := &Flatten{}
	x := tensor.New(2, 3, 4)
	y := f.Forward(x, false)
	if y.Rank() != 2 || y.Dim(1) != 12 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	g := tensor.New(2, 12)
	dx := f.Backward(g)
	if dx.Rank() != 3 || dx.Dim(2) != 4 {
		t.Fatalf("backward shape %v", dx.Shape)
	}
}

func TestSequentialComposesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := NewSequential(NewDense(rng, 3, 5), NewActivation(ActReLU), NewDense(rng, 5, 1))
	x := tensor.New(4, 3)
	x.RandNormal(rng, 1)
	checkInputGrad(t, s, x, 1e-6)
	if len(s.Params()) != 4 {
		t.Fatalf("expected 4 params, got %d", len(s.Params()))
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 2)
	target := tensor.FromSlice([]float64{0, 4}, 2)
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-2.5) > 1e-12 { // (1 + 4)/2
		t.Fatalf("loss = %v, want 2.5", loss)
	}
	if math.Abs(grad.Data[0]-1) > 1e-12 || math.Abs(grad.Data[1]+2) > 1e-12 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

// trainToyRegression fits y = 2x1 - 3x2 + 1 with the given optimizer and
// returns the final loss.
func trainToyRegression(t *testing.T, makeOpt func([]*Param) Optimizer, steps int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(15))
	model := NewSequential(NewDense(rng, 2, 8), NewActivation(ActReLU), NewDense(rng, 8, 1))
	opt := makeOpt(model.Params())
	x := tensor.New(64, 2)
	x.RandNormal(rng, 1)
	y := tensor.New(64, 1)
	for i := 0; i < 64; i++ {
		y.Set(2*x.At(i, 0)-3*x.At(i, 1)+1, i, 0)
	}
	loss := 0.0
	for s := 0; s < steps; s++ {
		pred := model.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = MSELoss(pred, y)
		model.Backward(grad)
		opt.Step()
	}
	return loss
}

func TestAdamConverges(t *testing.T) {
	if l := trainToyRegression(t, func(p []*Param) Optimizer { return NewAdam(p, 0.01) }, 400); l > 0.05 {
		t.Fatalf("Adam final loss %v", l)
	}
}

func TestAdamWConverges(t *testing.T) {
	if l := trainToyRegression(t, func(p []*Param) Optimizer { return NewAdamW(p, 0.01, 1e-4) }, 400); l > 0.05 {
		t.Fatalf("AdamW final loss %v", l)
	}
}

func TestRMSpropConverges(t *testing.T) {
	if l := trainToyRegression(t, func(p []*Param) Optimizer { return NewRMSprop(p, 0.005) }, 500); l > 0.1 {
		t.Fatalf("RMSprop final loss %v", l)
	}
}

func TestAdadeltaMakesProgress(t *testing.T) {
	base := trainToyRegression(t, func(p []*Param) Optimizer { return NewAdadelta(p) }, 1)
	l := trainToyRegression(t, func(p []*Param) Optimizer { return NewAdadelta(p) }, 600)
	if l >= base/2 {
		t.Fatalf("Adadelta did not reduce loss: %v -> %v", base, l)
	}
}

func TestNewOptimizerNames(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	d := NewDense(rng, 2, 2)
	for _, name := range []string{"adam", "adamw", "rmsprop", "adadelta"} {
		if NewOptimizer(name, d.Params(), 0.01) == nil {
			t.Fatalf("nil optimizer for %s", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown optimizer")
		}
	}()
	NewOptimizer("sgd", d.Params(), 0.01)
}

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := NewDense(rng, 3, 4)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	b := NewDense(rng, 3, 4)
	if err := LoadParams(&buf, b.Params()); err != nil {
		t.Fatal(err)
	}
	for i := range a.W.Value.Data {
		if a.W.Value.Data[i] != b.W.Value.Data[i] {
			t.Fatal("weights differ after round trip")
		}
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := NewDense(rng, 3, 4)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	b := NewDense(rng, 4, 4)
	if err := LoadParams(&buf, b.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := NewDense(rng, 3, 4)
	b := NewDense(rng, 3, 4)
	if err := CopyParams(b.Params(), a.Params()); err != nil {
		t.Fatal(err)
	}
	if a.W.Value.Data[0] != b.W.Value.Data[0] {
		t.Fatal("copy failed")
	}
	c := NewDense(rng, 2, 4)
	if err := CopyParams(c.Params(), a.Params()); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestGlorotInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	p := NewParam("w", 100, 100)
	GlorotInit(rng, p, 100, 100)
	std := 0.0
	for _, v := range p.Value.Data {
		std += v * v
	}
	std = math.Sqrt(std / float64(p.Value.Len()))
	want := math.Sqrt(2.0 / 200)
	if math.Abs(std-want) > 0.01 {
		t.Fatalf("glorot std %v, want ~%v", std, want)
	}
}

func TestConv3DBatchConsistency(t *testing.T) {
	// A batch forward must equal per-sample forwards.
	rng := rand.New(rand.NewSource(30))
	c := NewConv3D(rng, 2, 3, 3)
	batch := tensor.New(3, 2, 4, 4, 4)
	batch.RandNormal(rng, 1)
	full := c.Forward(batch, false)
	per := batch.Len() / 3
	outPer := full.Len() / 3
	for n := 0; n < 3; n++ {
		single := tensor.FromSlice(append([]float64(nil), batch.Data[n*per:(n+1)*per]...), 1, 2, 4, 4, 4)
		got := c.Forward(single, false)
		for i := 0; i < outPer; i++ {
			if math.Abs(got.Data[i]-full.Data[n*outPer+i]) > 1e-12 {
				t.Fatalf("sample %d diverges from batch at %d", n, i)
			}
		}
	}
}

func TestOptimizerSetLR(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := NewDense(rng, 2, 2)
	for _, name := range []string{"adam", "adamw", "rmsprop"} {
		opt := NewOptimizer(name, d.Params(), 0.01)
		opt.SetLR(0.5)
		if opt.LR() != 0.5 {
			t.Fatalf("%s SetLR failed", name)
		}
	}
	ad := NewAdadelta(d.Params())
	ad.SetLR(0.5) // no-op by design
	if ad.LR() != 1 {
		t.Fatal("Adadelta LR must report 1")
	}
}

func TestAdamWDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := NewDense(rng, 4, 4)
	b := NewDense(rng, 4, 4)
	CopyParams(b.Params(), a.Params())
	optPlain := NewAdam(a.Params(), 0.01)
	optDecay := NewAdamW(b.Params(), 0.01, 0.1)
	// Same zero gradient steps: only decay moves weights.
	for i := 0; i < 10; i++ {
		optPlain.Step()
		optDecay.Step()
	}
	normA, normB := a.W.Value.Norm2(), b.W.Value.Norm2()
	if normB >= normA {
		t.Fatalf("AdamW decay did not shrink weights: %v vs %v", normB, normA)
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	b := NewBatchNorm(2)
	rng := rand.New(rand.NewSource(33))
	// Train on shifted data to move running stats.
	for i := 0; i < 50; i++ {
		x := tensor.New(16, 2)
		x.RandNormal(rng, 1)
		for j := range x.Data {
			x.Data[j] += 5
		}
		b.Forward(x, true)
	}
	// Eval on a single sample: normalization must use running stats,
	// not batch stats (batch of 1 would divide by zero variance).
	x := tensor.FromSlice([]float64{5, 5}, 1, 2)
	y := b.Forward(x, false)
	for _, v := range y.Data {
		if math.Abs(v) > 1.0 {
			t.Fatalf("eval-mode output %v; running stats not applied", v)
		}
	}
}
