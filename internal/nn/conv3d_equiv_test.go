package nn

import (
	"math/rand"
	"testing"

	"deepfusion/internal/tensor"
)

// sparseVoxels fills x like a voxelized complex: mostly zero, with
// clustered Gaussian-ish density.
func sparseVoxels(rng *rand.Rand, x *tensor.Tensor) {
	for i := range x.Data {
		if rng.Float64() < 0.15 {
			x.Data[i] = rng.NormFloat64()
		}
	}
}

// TestConv3DLoweredMatchesDirect asserts the lowered paths (sparse
// scatter for cache-resident outputs, tiled im2col GEMM beyond) agree
// with the reference loops to floating-point reassociation tolerance —
// the property that lets the screening engine swap algorithms freely.
func TestConv3DLoweredMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ batch, in, out, k, g int }{
		{1, 3, 4, 3, 4},
		{3, 4, 5, 5, 6},
		{2, 2, 3, 3, 8},
		{1, 2, 5, 3, 21}, // large grid: exercises the multi-tile GEMM path
	} {
		c := NewConv3D(rand.New(rand.NewSource(11)), tc.in, tc.out, tc.k)
		x := tensor.New(tc.batch, tc.in, tc.g, tc.g, tc.g)
		sparseVoxels(rng, x)

		lowered := c.Forward(x, false)
		c.Direct = true
		direct := c.Forward(x, false)
		for i := range direct.Data {
			if diff := direct.Data[i] - lowered.Data[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("case %+v: forward diverges at %d: direct %v lowered %v",
					tc, i, direct.Data[i], lowered.Data[i])
			}
		}

		grad := tensor.New(lowered.Shape...)
		sparseVoxels(rng, grad)
		// Direct backward (caches from the direct forward just run).
		ZeroGrads(c.Params())
		dxDirect := c.Backward(grad)
		wgDirect := c.W.Grad.Clone()
		bgDirect := c.B.Grad.Clone()
		// Lowered backward.
		c.Direct = false
		c.Forward(x, false)
		ZeroGrads(c.Params())
		dxLowered := c.Backward(grad)
		for i := range dxDirect.Data {
			if diff := dxDirect.Data[i] - dxLowered.Data[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("case %+v: dx diverges at %d: %v vs %v", tc, i, dxDirect.Data[i], dxLowered.Data[i])
			}
		}
		for i := range wgDirect.Data {
			if diff := wgDirect.Data[i] - c.W.Grad.Data[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("case %+v: dW diverges at %d: %v vs %v", tc, i, wgDirect.Data[i], c.W.Grad.Data[i])
			}
		}
		for i := range bgDirect.Data {
			if diff := bgDirect.Data[i] - c.B.Grad.Data[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("case %+v: dB diverges at %d: %v vs %v", tc, i, bgDirect.Data[i], c.B.Grad.Data[i])
			}
		}
	}
}

// BenchmarkConv3DForward compares the lowered GEMM path against the
// direct reference loops at the screening-default geometry.
func BenchmarkConv3DForward(b *testing.B) {
	for _, bench := range []struct {
		name   string
		direct bool
		batch  int
	}{
		{"lowered/b1", false, 1},
		{"lowered/b8", false, 8},
		{"direct/b1", true, 1},
		{"direct/b8", true, 8},
	} {
		b.Run(bench.name, func(b *testing.B) {
			c := NewConv3D(rand.New(rand.NewSource(1)), 16, 8, 5)
			c.Direct = bench.direct
			x := tensor.New(bench.batch, 16, 8, 8, 8)
			sparseVoxels(rand.New(rand.NewSource(2)), x)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Forward(x, false)
			}
		})
	}
}
