package nn

import (
	"math"

	"deepfusion/internal/tensor"
)

// BatchNorm normalizes a [N, F] activation per feature, with learned
// scale (gamma) and shift (beta), keeping running statistics for
// evaluation mode. This is the "Batch norm." T/F option of Table 1.
type BatchNorm struct {
	F        int
	Gamma    *Param
	Beta     *Param
	RunMean  []float64
	RunVar   []float64
	Momentum float64
	Eps      float64

	// cached forward state
	lastXHat *tensor.Tensor
	lastStd  []float64
}

// NewBatchNorm constructs a batch-norm layer over f features.
func NewBatchNorm(f int) *BatchNorm {
	b := &BatchNorm{
		F:        f,
		Gamma:    NewParam("bn.gamma", f),
		Beta:     NewParam("bn.beta", f),
		RunMean:  make([]float64, f),
		RunVar:   make([]float64, f),
		Momentum: 0.9,
		Eps:      1e-5,
	}
	b.Gamma.Value.Fill(1)
	for i := range b.RunVar {
		b.RunVar[i] = 1
	}
	return b
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != b.F {
		panic("nn: BatchNorm expects [N, F] input matching layer width")
	}
	n := x.Dim(0)
	out := tensor.New(x.Shape...)
	if !train || n < 2 {
		// Evaluation (or degenerate batch): use running statistics.
		b.lastXHat = nil
		for i := 0; i < n; i++ {
			for j := 0; j < b.F; j++ {
				xh := (x.At(i, j) - b.RunMean[j]) / math.Sqrt(b.RunVar[j]+b.Eps)
				out.Set(b.Gamma.Value.Data[j]*xh+b.Beta.Value.Data[j], i, j)
			}
		}
		return out
	}
	mean := make([]float64, b.F)
	vari := make([]float64, b.F)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			d := v - mean[j]
			vari[j] += d * d
		}
	}
	for j := range vari {
		vari[j] /= float64(n)
	}
	b.lastXHat = tensor.New(x.Shape...)
	b.lastStd = make([]float64, b.F)
	for j := 0; j < b.F; j++ {
		b.lastStd[j] = math.Sqrt(vari[j] + b.Eps)
		b.RunMean[j] = b.Momentum*b.RunMean[j] + (1-b.Momentum)*mean[j]
		b.RunVar[j] = b.Momentum*b.RunVar[j] + (1-b.Momentum)*vari[j]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < b.F; j++ {
			xh := (x.At(i, j) - mean[j]) / b.lastStd[j]
			b.lastXHat.Set(xh, i, j)
			out.Set(b.Gamma.Value.Data[j]*xh+b.Beta.Value.Data[j], i, j)
		}
	}
	return out
}

// Backward implements Layer.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		// Eval-mode backward: treat statistics as constants.
		out := tensor.New(grad.Shape...)
		n := grad.Dim(0)
		for i := 0; i < n; i++ {
			for j := 0; j < b.F; j++ {
				out.Set(grad.At(i, j)*b.Gamma.Value.Data[j]/math.Sqrt(b.RunVar[j]+b.Eps), i, j)
			}
		}
		return out
	}
	n := grad.Dim(0)
	nf := float64(n)
	out := tensor.New(grad.Shape...)
	for j := 0; j < b.F; j++ {
		sumG, sumGX := 0.0, 0.0
		for i := 0; i < n; i++ {
			g := grad.At(i, j)
			xh := b.lastXHat.At(i, j)
			sumG += g
			sumGX += g * xh
			b.Beta.Grad.Data[j] += g
			b.Gamma.Grad.Data[j] += g * xh
		}
		gamma := b.Gamma.Value.Data[j]
		for i := 0; i < n; i++ {
			g := grad.At(i, j)
			xh := b.lastXHat.At(i, j)
			dx := gamma / b.lastStd[j] * (g - sumG/nf - xh*sumGX/nf)
			out.Set(dx, i, j)
		}
	}
	return out
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
