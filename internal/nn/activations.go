package nn

import (
	"math"

	"deepfusion/internal/tensor"
)

// Activation names accepted by NewActivation; these are the options in
// Table 1 of the paper.
const (
	ActReLU  = "relu"
	ActLReLU = "lrelu"
	ActSELU  = "selu"
)

// SELU constants from Klambauer et al. 2017.
const (
	seluAlpha  = 1.6732632423543772
	seluLambda = 1.0507009873554805
)

// Activation is an element-wise nonlinearity layer.
type Activation struct {
	Kind  string
	Slope float64 // negative-region slope for lrelu

	lastX *tensor.Tensor
}

// NewActivation constructs the named activation. For ActLReLU the
// conventional slope of 0.01 is used. Unknown names panic.
func NewActivation(kind string) *Activation {
	switch kind {
	case ActReLU, ActSELU:
		return &Activation{Kind: kind}
	case ActLReLU:
		return &Activation{Kind: kind, Slope: 0.01}
	default:
		panic("nn: unknown activation " + kind)
	}
}

// Forward implements Layer.
func (a *Activation) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	a.lastX = x
	switch a.Kind {
	case ActReLU:
		return x.Map(func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0
		})
	case ActLReLU:
		return x.Map(func(v float64) float64 {
			if v > 0 {
				return v
			}
			return a.Slope * v
		})
	case ActSELU:
		return x.Map(func(v float64) float64 {
			if v > 0 {
				return seluLambda * v
			}
			return seluLambda * seluAlpha * (math.Exp(v) - 1)
		})
	}
	panic("nn: unknown activation " + a.Kind)
}

// Backward implements Layer.
func (a *Activation) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape...)
	x := a.lastX
	switch a.Kind {
	case ActReLU:
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = grad.Data[i]
			}
		}
	case ActLReLU:
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = grad.Data[i]
			} else {
				out.Data[i] = a.Slope * grad.Data[i]
			}
		}
	case ActSELU:
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = seluLambda * grad.Data[i]
			} else {
				out.Data[i] = seluLambda * seluAlpha * math.Exp(v) * grad.Data[i]
			}
		}
	}
	return out
}

// Params implements Layer.
func (a *Activation) Params() []*Param { return nil }
