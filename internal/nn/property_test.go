package nn

// Property-based tests (testing/quick) for the neural-network
// substrate: activation monotonicity, loss axioms, and the affine
// structure of the Dense layer.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepfusion/internal/tensor"
)

// boundedInputs converts arbitrary quick floats into a well-scaled,
// finite input tensor.
func boundedInputs(vals []float64, n int) *tensor.Tensor {
	x := tensor.New(1, n)
	for i := 0; i < n; i++ {
		v := 0.0
		if i < len(vals) {
			v = vals[i]
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		x.Data[i] = math.Mod(v, 10)
	}
	return x
}

func TestActivationsMonotoneProperty(t *testing.T) {
	// ReLU, Leaky-ReLU and SELU are all non-decreasing scalar maps.
	for _, kind := range []string{"relu", "lrelu", "selu"} {
		act := NewActivation(kind)
		check := func(a, b float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
				return true
			}
			lo, hi := math.Mod(a, 50), math.Mod(b, 50)
			if lo > hi {
				lo, hi = hi, lo
			}
			x := tensor.FromSlice([]float64{lo, hi}, 1, 2)
			y := act.Forward(x, false)
			return y.Data[0] <= y.Data[1]+1e-12
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestActivationsFixZeroProperty(t *testing.T) {
	// All three activations map 0 to 0.
	for _, kind := range []string{"relu", "lrelu", "selu"} {
		act := NewActivation(kind)
		x := tensor.New(1, 1)
		y := act.Forward(x, false)
		if y.Data[0] != 0 {
			t.Fatalf("%s(0) = %g, want 0", kind, y.Data[0])
		}
	}
}

func TestMSELossAxiomsProperty(t *testing.T) {
	check := func(vals []float64) bool {
		n := 4
		pred := boundedInputs(vals, n)
		// Loss against itself is zero with zero gradient.
		self, g := MSELoss(pred, pred.Clone())
		if self != 0 {
			return false
		}
		for _, gi := range g.Data {
			if gi != 0 {
				return false
			}
		}
		// Loss against anything else is strictly non-negative.
		other := pred.Clone()
		other.Data[0] += 1
		loss, _ := MSELoss(pred, other)
		return loss > 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMSEGradientDirectionProperty(t *testing.T) {
	// A small step along the negative gradient must not increase the
	// loss (first-order descent property).
	check := func(vals []float64, seed int64) bool {
		n := 6
		pred := boundedInputs(vals, n)
		rng := rand.New(rand.NewSource(seed))
		truth := tensor.New(1, n)
		for i := range truth.Data {
			truth.Data[i] = rng.NormFloat64()
		}
		loss0, grad := MSELoss(pred, truth)
		stepped := pred.Clone()
		stepped.AXPY(-1e-4, grad)
		loss1, _ := MSELoss(stepped, truth)
		return loss1 <= loss0+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseIsAffineProperty(t *testing.T) {
	// For an affine map f, f(x+y) + f(0) = f(x) + f(y) exactly (up to
	// float round-off). This pins Dense to having no hidden
	// non-linearity.
	rng := rand.New(rand.NewSource(99))
	d := NewDense(rng, 5, 3)
	check := func(xs, ys []float64) bool {
		x := boundedInputs(xs, 5)
		y := boundedInputs(ys, 5)
		xy := tensor.Add(x, y)
		z := tensor.New(1, 5)
		fx := d.Forward(x, false)
		fy := d.Forward(y, false)
		fxy := d.Forward(xy, false)
		f0 := d.Forward(z, false)
		for i := range fx.Data {
			lhs := fxy.Data[i] + f0.Data[i]
			rhs := fx.Data[i] + fy.Data[i]
			if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDropoutEvalIsIdentityProperty(t *testing.T) {
	do := NewDropout(rand.New(rand.NewSource(7)), 0.4)
	check := func(vals []float64) bool {
		x := boundedInputs(vals, 8)
		y := do.Forward(x, false) // eval mode
		for i := range x.Data {
			if y.Data[i] != x.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSELUContinuousAtZeroProperty(t *testing.T) {
	// SELU's two branches must agree at the origin: values straddling
	// zero map to nearby outputs (Lipschitz continuity with the SELU
	// scale constant ~1.758 on the negative side).
	act := NewActivation("selu")
	check := func(eps float64) bool {
		e := math.Abs(math.Mod(eps, 1e-3)) + 1e-12
		x := tensor.FromSlice([]float64{-e, e}, 1, 2)
		y := act.Forward(x, false)
		return math.Abs(y.Data[1]-y.Data[0]) < 4*e
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
