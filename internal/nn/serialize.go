package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Checkpoint I/O: parameters are written in order as
// (rank, dims..., values...) little-endian records preceded by a magic
// header, the role filled by torch.save in the original pipeline.

var ckptMagic = [8]byte{'D', 'F', 'C', 'K', 'P', 'T', '0', '1'}

// SaveParams writes the given parameters to w.
func SaveParams(w io.Writer, params []*Param) error {
	if _, err := w.Write(ckptMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Value.Shape))); err != nil {
			return err
		}
		for _, d := range p.Value.Shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 8*len(p.Value.Data))
		for i, v := range p.Value.Data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadParams reads a checkpoint produced by SaveParams into params,
// which must match in count and shape.
func LoadParams(r io.Reader, params []*Param) error {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return err
	}
	if magic != ckptMagic {
		return errors.New("nn: bad checkpoint magic")
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", n, len(params))
	}
	for _, p := range params {
		var rank uint32
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return err
		}
		if int(rank) != len(p.Value.Shape) {
			return fmt.Errorf("nn: param %q rank mismatch: checkpoint %d, model %d", p.Name, rank, len(p.Value.Shape))
		}
		for i := range p.Value.Shape {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != p.Value.Shape[i] {
				return fmt.Errorf("nn: param %q dim %d mismatch: checkpoint %d, model %d", p.Name, i, d, p.Value.Shape[i])
			}
		}
		buf := make([]byte, 8*len(p.Value.Data))
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for i := range p.Value.Data {
			p.Value.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
	return nil
}

// CopyParams copies values from src into dst; shapes must match. Used
// when Coherent Fusion loads pre-trained 3D-CNN and SG-CNN heads.
func CopyParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: CopyParams count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if !dst[i].Value.SameShape(src[i].Value) {
			return fmt.Errorf("nn: CopyParams shape mismatch at %d (%v vs %v)", i, dst[i].Value.Shape, src[i].Value.Shape)
		}
		copy(dst[i].Value.Data, src[i].Value.Data)
	}
	return nil
}
