package nn

import (
	"math/rand"

	"deepfusion/internal/tensor"
)

// Dropout implements inverted dropout: during training each element is
// zeroed with probability Rate and survivors are scaled by 1/(1-Rate)
// so evaluation needs no rescaling. A Rate of 0 is a no-op.
type Dropout struct {
	Rate float64
	rng  *rand.Rand

	mask []float64
}

// NewDropout constructs a dropout layer with its own deterministic
// random stream. Rates outside [0, 1) panic.
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("nn: dropout rate must be in [0, 1)")
	}
	return &Dropout{Rate: rate, rng: rand.New(rand.NewSource(rng.Int63()))}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate == 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	d.mask = make([]float64, x.Len())
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		out.Data[i] = g * d.mask[i]
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }
