package nn

import (
	"fmt"
	"math/rand"

	"deepfusion/internal/tensor"
)

// Conv3D is a 3-dimensional convolution over voxel grids shaped
// [N, C, D, H, W] with cubic kernels, stride 1 and "same" zero padding
// (pad = K/2), matching the 5x5x5 and 3x3x3 stages of the paper's
// 3D-CNN.
type Conv3D struct {
	In, Out, K int
	W          *Param // [Out, In, K, K, K]
	B          *Param // [Out]

	lastX *tensor.Tensor
}

// NewConv3D constructs a Glorot-initialized 3D convolution.
func NewConv3D(rng *rand.Rand, in, out, k int) *Conv3D {
	if k%2 == 0 {
		panic("nn: Conv3D kernel size must be odd for same padding")
	}
	c := &Conv3D{
		In:  in,
		Out: out,
		K:   k,
		W:   NewParam("conv3d.w", out, in, k, k, k),
		B:   NewParam("conv3d.b", out),
	}
	fan := in * k * k * k
	GlorotInit(rng, c.W, fan, out*k*k*k)
	return c
}

// Forward implements Layer.
func (c *Conv3D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 5 || x.Dim(1) != c.In {
		panic(fmt.Sprintf("nn: Conv3D expects [N,%d,D,H,W], got %v", c.In, x.Shape))
	}
	c.lastX = x
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	pad := c.K / 2
	out := tensor.New(n, c.Out, d, h, w)
	k := c.K
	tensor.ParallelFor(n*c.Out, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			ni, co := idx/c.Out, idx%c.Out
			bias := c.B.Value.Data[co]
			for zd := 0; zd < d; zd++ {
				for zh := 0; zh < h; zh++ {
					for zw := 0; zw < w; zw++ {
						s := bias
						for ci := 0; ci < c.In; ci++ {
							for kd := 0; kd < k; kd++ {
								id := zd + kd - pad
								if id < 0 || id >= d {
									continue
								}
								for kh := 0; kh < k; kh++ {
									ih := zh + kh - pad
									if ih < 0 || ih >= h {
										continue
									}
									xBase := ((ni*c.In+ci)*d+id)*h + ih
									wBase := (((co*c.In+ci)*k+kd)*k + kh) * k
									xRow := x.Data[xBase*w : xBase*w+w]
									wRow := c.W.Value.Data[wBase : wBase+k]
									for kw := 0; kw < k; kw++ {
										iw := zw + kw - pad
										if iw < 0 || iw >= w {
											continue
										}
										s += xRow[iw] * wRow[kw]
									}
								}
							}
						}
						out.Set(s, ni, co, zd, zh, zw)
					}
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (c *Conv3D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastX
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	pad := c.K / 2
	k := c.K
	dx := tensor.New(x.Shape...)
	// Parameter gradients are accumulated serially per output channel to
	// avoid write races; input gradients are accumulated per sample.
	for ni := 0; ni < n; ni++ {
		for co := 0; co < c.Out; co++ {
			for zd := 0; zd < d; zd++ {
				for zh := 0; zh < h; zh++ {
					for zw := 0; zw < w; zw++ {
						g := grad.At(ni, co, zd, zh, zw)
						if g == 0 {
							continue
						}
						c.B.Grad.Data[co] += g
						for ci := 0; ci < c.In; ci++ {
							for kd := 0; kd < k; kd++ {
								id := zd + kd - pad
								if id < 0 || id >= d {
									continue
								}
								for kh := 0; kh < k; kh++ {
									ih := zh + kh - pad
									if ih < 0 || ih >= h {
										continue
									}
									xBase := (((ni*c.In+ci)*d+id)*h + ih) * w
									wBase := ((((co*c.In+ci)*k+kd)*k + kh) * k)
									for kw := 0; kw < k; kw++ {
										iw := zw + kw - pad
										if iw < 0 || iw >= w {
											continue
										}
										c.W.Grad.Data[wBase+kw] += g * x.Data[xBase+iw]
										dx.Data[xBase+iw] += g * c.W.Value.Data[wBase+kw]
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv3D) Params() []*Param { return []*Param{c.W, c.B} }

// MaxPool3D downsamples [N, C, D, H, W] by taking the maximum over
// non-overlapping cubic windows of size K (dimensions must divide K).
type MaxPool3D struct {
	K int

	lastArg []int // winning input flat index per output element
	inShape []int
}

// NewMaxPool3D constructs a max-pooling layer with window k.
func NewMaxPool3D(k int) *MaxPool3D { return &MaxPool3D{K: k} }

// Forward implements Layer.
func (m *MaxPool3D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, d, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	k := m.K
	if d%k != 0 || h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: MaxPool3D window %d does not divide grid %v", k, x.Shape))
	}
	od, oh, ow := d/k, h/k, w/k
	out := tensor.New(n, c, od, oh, ow)
	m.lastArg = make([]int, out.Len())
	m.inShape = append([]int(nil), x.Shape...)
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for zd := 0; zd < od; zd++ {
				for zh := 0; zh < oh; zh++ {
					for zw := 0; zw < ow; zw++ {
						best := 0
						bestV := 0.0
						first := true
						for kd := 0; kd < k; kd++ {
							for kh := 0; kh < k; kh++ {
								for kw := 0; kw < k; kw++ {
									fi := ((((ni*c+ci)*d+zd*k+kd)*h + zh*k + kh) * w) + zw*k + kw
									if first || x.Data[fi] > bestV {
										best, bestV = fi, x.Data[fi]
										first = false
									}
								}
							}
						}
						out.Data[oi] = bestV
						m.lastArg[oi] = best
						oi++
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool3D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.inShape...)
	for oi, fi := range m.lastArg {
		dx.Data[fi] += grad.Data[oi]
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool3D) Params() []*Param { return nil }

// Flatten reshapes [N, ...] to [N, prod(...)]; its backward restores the
// original shape.
type Flatten struct {
	inShape []int
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append([]int(nil), x.Shape...)
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }
