package nn

import (
	"fmt"
	"math/rand"

	"deepfusion/internal/tensor"
)

// Conv3D is a 3-dimensional convolution over voxel grids shaped
// [N, C, D, H, W] with cubic kernels, stride 1 and "same" zero padding
// (pad = K/2), matching the 5x5x5 and 3x3x3 stages of the paper's
// 3D-CNN.
//
// The default execution path lowers the convolution to matrix
// multiplication (tensor.Im2Col3D + accumulating GEMM), which exploits
// the sparsity of voxelized complexes and amortizes kernel-matrix
// setup across the batch. Setting Direct selects the original
// seven-loop reference implementation. The paths agree to
// floating-point reassociation tolerance (the sparse-scatter forward
// accumulates terms input-major; the GEMM path matches the direct
// term order), asserted at 1e-12 by the nn equivalence tests.
type Conv3D struct {
	In, Out, K int
	W          *Param // [Out, In, K, K, K]
	B          *Param // [Out]

	// Direct selects the reference (unlowered) convolution loops.
	// It exists for verification and as the per-sample baseline of
	// the screening throughput benchmarks.
	Direct bool

	lastX *tensor.Tensor
}

// convTile caps the number of output positions lowered per im2col
// patch matrix, bounding the scratch footprint at paper-scale grids
// (48^3 positions would otherwise materialize gigabyte matrices).
const convTile = 8192

// scatterMaxBytes bounds the per-sample accumulator footprint for the
// sparse-scatter forward. The scatter path touches only the taps of
// nonzero inputs; the tile path materializes the full C*k^3-wide patch
// matrix regardless of sparsity, and measured across the production
// shapes (repro 8^3 through the paper's 48^3 grid, 2%-dense voxel
// inputs through 50%-dense post-ReLU activations) scatter wins or ties
// at every one of them, at both element widths — the im2col write
// traffic costs more than the accumulator's cache misses. 32 MB covers
// the paper grid's largest layer (32 filters x 48^3 x 8 bytes = 28 MB)
// while still bounding the buffer a degenerate shape could demand; the
// tile path remains the fallback above it.
const scatterMaxBytes = 1 << 25

// NewConv3D constructs a Glorot-initialized 3D convolution.
func NewConv3D(rng *rand.Rand, in, out, k int) *Conv3D {
	if k%2 == 0 {
		panic("nn: Conv3D kernel size must be odd for same padding")
	}
	c := &Conv3D{
		In:  in,
		Out: out,
		K:   k,
		W:   NewParam("conv3d.w", out, in, k, k, k),
		B:   NewParam("conv3d.b", out),
	}
	fan := in * k * k * k
	GlorotInit(rng, c.W, fan, out*k*k*k)
	return c
}

// Forward implements Layer.
func (c *Conv3D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 5 || x.Dim(1) != c.In {
		panic(fmt.Sprintf("nn: Conv3D expects [N,%d,D,H,W], got %v", c.In, x.Shape))
	}
	c.lastX = x
	if c.Direct {
		return c.forwardDirect(x)
	}
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	k := c.K
	dhw := d * h * w
	ck3 := c.In * k * k * k
	out := tensor.New(n, c.Out, d, h, w)
	// Kernel matrix transposed once per batch call: [CK^3, Out].
	wt := tensor.Transpose(c.W.Value.Reshape(c.Out, ck3))
	if c.Out*dhw*8 <= scatterMaxBytes {
		c.forwardScatter(x, out, wt)
		return out
	}
	tile := dhw
	if tile > convTile {
		tile = convTile
	}
	type unit struct{ b, lo, hi int }
	var units []unit
	for b := 0; b < n; b++ {
		for lo := 0; lo < dhw; lo += tile {
			hi := lo + tile
			if hi > dhw {
				hi = dhw
			}
			units = append(units, unit{b, lo, hi})
		}
	}
	tensor.ParallelFor(len(units), func(ulo, uhi int) {
		cols := tensor.New(tile, ck3)
		y := tensor.New(tile, c.Out)
		for ui := ulo; ui < uhi; ui++ {
			u := units[ui]
			rows := u.hi - u.lo
			ct, yt := cols, y
			if rows != tile {
				ct = tensor.FromSlice(cols.Data[:rows*ck3], rows, ck3)
				yt = tensor.FromSlice(y.Data[:rows*c.Out], rows, c.Out)
			}
			tensor.Im2Col3D(x, u.b, k, u.lo, u.hi, ct)
			// Seed every position with the bias, then accumulate the
			// patch GEMM on top (same term order as the direct loops).
			for r := 0; r < rows; r++ {
				copy(yt.Data[r*c.Out:(r+1)*c.Out], c.B.Value.Data)
			}
			tensor.MatMulAcc(yt, ct, wt)
			// Scatter the position-major tile into [Out, D, H, W].
			for o := 0; o < c.Out; o++ {
				dst := out.Data[(u.b*c.Out+o)*dhw+u.lo : (u.b*c.Out+o)*dhw+u.hi]
				for r := range dst {
					dst[r] = yt.Data[r*c.Out+o]
				}
			}
		}
	})
	return out
}

// forwardScatter is the sparse-input forward used for cache-resident
// outputs: it walks the nonzero input voxels once and scatters each
// one's kernel footprint into every output channel, so work scales
// with occupied grid cells instead of grid volume. wt is the kernel
// matrix transposed to [C*K^3, Out], making the per-offset channel
// row contiguous.
func (c *Conv3D) forwardScatter(x, out, wt *tensor.Tensor) {
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	k := c.K
	pad := k / 2
	dhw := d * h * w
	hw := h * w
	tensor.ParallelFor(n, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			outS := out.Data[b*c.Out*dhw : (b+1)*c.Out*dhw]
			for o := 0; o < c.Out; o++ {
				bias := c.B.Value.Data[o]
				row := outS[o*dhw : (o+1)*dhw]
				for i := range row {
					row[i] = bias
				}
			}
			for ci := 0; ci < c.In; ci++ {
				chBase := (b*c.In + ci) * dhw
				for ip, v := range x.Data[chBase : chBase+dhw] {
					if v == 0 {
						continue
					}
					id, rem := ip/hw, ip%hw
					ih, iw := rem/w, rem%w
					for kd := 0; kd < k; kd++ {
						zd := id + pad - kd
						if zd < 0 || zd >= d {
							continue
						}
						for kh := 0; kh < k; kh++ {
							zh := ih + pad - kh
							if zh < 0 || zh >= h {
								continue
							}
							wBase := ((ci*k+kd)*k + kh) * k
							for kw := 0; kw < k; kw++ {
								zw := iw + pad - kw
								if zw < 0 || zw >= w {
									continue
								}
								pos := (zd*h+zh)*w + zw
								wRow := wt.Data[(wBase+kw)*c.Out : (wBase+kw+1)*c.Out]
								for o, wv := range wRow {
									outS[o*dhw+pos] += wv * v
								}
							}
						}
					}
				}
			}
		}
	})
}

// forwardDirect is the reference seven-loop convolution.
func (c *Conv3D) forwardDirect(x *tensor.Tensor) *tensor.Tensor {
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	pad := c.K / 2
	out := tensor.New(n, c.Out, d, h, w)
	k := c.K
	tensor.ParallelFor(n*c.Out, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			ni, co := idx/c.Out, idx%c.Out
			bias := c.B.Value.Data[co]
			for zd := 0; zd < d; zd++ {
				for zh := 0; zh < h; zh++ {
					for zw := 0; zw < w; zw++ {
						s := bias
						for ci := 0; ci < c.In; ci++ {
							for kd := 0; kd < k; kd++ {
								id := zd + kd - pad
								if id < 0 || id >= d {
									continue
								}
								for kh := 0; kh < k; kh++ {
									ih := zh + kh - pad
									if ih < 0 || ih >= h {
										continue
									}
									xBase := ((ni*c.In+ci)*d+id)*h + ih
									wBase := (((co*c.In+ci)*k+kd)*k + kh) * k
									xRow := x.Data[xBase*w : xBase*w+w]
									wRow := c.W.Value.Data[wBase : wBase+k]
									for kw := 0; kw < k; kw++ {
										iw := zw + kw - pad
										if iw < 0 || iw >= w {
											continue
										}
										s += xRow[iw] * wRow[kw]
									}
								}
							}
						}
						out.Set(s, ni, co, zd, zh, zw)
					}
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (c *Conv3D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.Direct {
		return c.backwardDirect(grad)
	}
	x := c.lastX
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	k := c.K
	dhw := d * h * w
	ck3 := c.In * k * k * k
	dx := tensor.New(x.Shape...)
	wmat := c.W.Value.Reshape(c.Out, ck3)
	tile := dhw
	if tile > convTile {
		tile = convTile
	}
	// Per-worker-block parameter-gradient buffers keep the parallel
	// region race-free at O(workers) scratch; blocks are reduced in
	// batch order below so accumulation stays deterministic.
	dws := make([]*tensor.Tensor, n)
	dbs := make([]*tensor.Tensor, n)
	tensor.ParallelFor(n, func(blo, bhi int) {
		cols := tensor.New(tile, ck3)
		dyT := tensor.New(tile, c.Out)
		dcols := tensor.New(tile, ck3)
		dw := tensor.New(c.Out, ck3)
		db := tensor.New(c.Out)
		dws[blo], dbs[blo] = dw, db
		for b := blo; b < bhi; b++ {
			for lo := 0; lo < dhw; lo += tile {
				hi := lo + tile
				if hi > dhw {
					hi = dhw
				}
				rows := hi - lo
				ct, dyt, dct := cols, dyT, dcols
				if rows != tile {
					ct = tensor.FromSlice(cols.Data[:rows*ck3], rows, ck3)
					dyt = tensor.FromSlice(dyT.Data[:rows*c.Out], rows, c.Out)
					dct = tensor.FromSlice(dcols.Data[:rows*ck3], rows, ck3)
				}
				tensor.Im2Col3D(x, b, k, lo, hi, ct)
				// Gather the output gradient tile position-major.
				for o := 0; o < c.Out; o++ {
					src := grad.Data[(b*c.Out+o)*dhw+lo : (b*c.Out+o)*dhw+hi]
					for r, g := range src {
						dyt.Data[r*c.Out+o] = g
						db.Data[o] += g
					}
				}
				dw.AddInPlace(tensor.MatMulTransA(dyt, ct)) // [Out, CK^3]
				dct.Zero()
				tensor.MatMulAcc(dct, dyt, wmat) // [rows, CK^3]
				tensor.Col2Im3D(dct, b, k, lo, hi, dx)
			}
		}
	})
	for b := 0; b < n; b++ {
		if dws[b] == nil {
			continue
		}
		c.W.Grad.AddInPlace(dws[b])
		c.B.Grad.AddInPlace(dbs[b])
	}
	return dx
}

// backwardDirect is the reference backward matching forwardDirect.
func (c *Conv3D) backwardDirect(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastX
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	pad := c.K / 2
	k := c.K
	dx := tensor.New(x.Shape...)
	// Parameter gradients are accumulated serially per output channel to
	// avoid write races; input gradients are accumulated per sample.
	for ni := 0; ni < n; ni++ {
		for co := 0; co < c.Out; co++ {
			for zd := 0; zd < d; zd++ {
				for zh := 0; zh < h; zh++ {
					for zw := 0; zw < w; zw++ {
						g := grad.At(ni, co, zd, zh, zw)
						if g == 0 {
							continue
						}
						c.B.Grad.Data[co] += g
						for ci := 0; ci < c.In; ci++ {
							for kd := 0; kd < k; kd++ {
								id := zd + kd - pad
								if id < 0 || id >= d {
									continue
								}
								for kh := 0; kh < k; kh++ {
									ih := zh + kh - pad
									if ih < 0 || ih >= h {
										continue
									}
									xBase := (((ni*c.In+ci)*d+id)*h + ih) * w
									wBase := ((((co*c.In+ci)*k+kd)*k + kh) * k)
									for kw := 0; kw < k; kw++ {
										iw := zw + kw - pad
										if iw < 0 || iw >= w {
											continue
										}
										c.W.Grad.Data[wBase+kw] += g * x.Data[xBase+iw]
										dx.Data[xBase+iw] += g * c.W.Value.Data[wBase+kw]
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv3D) Params() []*Param { return []*Param{c.W, c.B} }

// MaxPool3D downsamples [N, C, D, H, W] by taking the maximum over
// non-overlapping cubic windows of size K (dimensions must divide K).
type MaxPool3D struct {
	K int

	lastArg []int // winning input flat index per output element
	inShape []int
}

// NewMaxPool3D constructs a max-pooling layer with window k.
func NewMaxPool3D(k int) *MaxPool3D { return &MaxPool3D{K: k} }

// Forward implements Layer.
func (m *MaxPool3D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, d, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	k := m.K
	if d%k != 0 || h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: MaxPool3D window %d does not divide grid %v", k, x.Shape))
	}
	od, oh, ow := d/k, h/k, w/k
	out := tensor.New(n, c, od, oh, ow)
	m.lastArg = make([]int, out.Len())
	m.inShape = append([]int(nil), x.Shape...)
	perChan := od * oh * ow
	tensor.ParallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			ni, ci := nc/c, nc%c
			oi := nc * perChan
			for zd := 0; zd < od; zd++ {
				for zh := 0; zh < oh; zh++ {
					for zw := 0; zw < ow; zw++ {
						best := 0
						bestV := 0.0
						first := true
						for kd := 0; kd < k; kd++ {
							for kh := 0; kh < k; kh++ {
								for kw := 0; kw < k; kw++ {
									fi := ((((ni*c+ci)*d+zd*k+kd)*h + zh*k + kh) * w) + zw*k + kw
									if first || x.Data[fi] > bestV {
										best, bestV = fi, x.Data[fi]
										first = false
									}
								}
							}
						}
						out.Data[oi] = bestV
						m.lastArg[oi] = best
						oi++
					}
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (m *MaxPool3D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.inShape...)
	for oi, fi := range m.lastArg {
		dx.Data[fi] += grad.Data[oi]
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool3D) Params() []*Param { return nil }

// Flatten reshapes [N, ...] to [N, prod(...)]; its backward restores the
// original shape.
type Flatten struct {
	inShape []int
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append([]int(nil), x.Shape...)
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }
