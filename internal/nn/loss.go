package nn

import "deepfusion/internal/tensor"

// MSELoss returns the mean-squared error between predictions and
// targets (both [N] or [N,1]) and the gradient of the loss with respect
// to the predictions. This is the objective function (Q) of the paper's
// PB2 optimization.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if pred.Len() != target.Len() {
		panic("nn: MSELoss length mismatch")
	}
	n := float64(pred.Len())
	grad := tensor.New(pred.Shape...)
	loss := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}
