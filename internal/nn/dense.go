package nn

import (
	"math/rand"

	"deepfusion/internal/tensor"
)

// Dense is a fully connected layer computing y = x*W^T + b for input
// x of shape [N, In] producing [N, Out].
type Dense struct {
	In, Out int
	W       *Param // [Out, In]
	B       *Param // [Out]

	lastX *tensor.Tensor
}

// NewDense constructs a Glorot-initialized fully connected layer.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam("dense.w", out, in),
		B:   NewParam("dense.b", out),
	}
	GlorotInit(rng, d.W, in, out)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panicShape("Dense", x, d.In)
	}
	d.lastX = x
	y := tensor.MatMulTransB(x, d.W.Value) // [N, Out]
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += d.B.Value.Data[j]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW = grad^T * x ; db = sum over batch ; dx = grad * W
	dw := tensor.MatMulTransA(grad, d.lastX) // [Out, In]
	d.W.Grad.AddInPlace(dw)
	n := grad.Dim(0)
	for i := 0; i < n; i++ {
		row := grad.Row(i)
		for j, g := range row {
			d.B.Grad.Data[j] += g
		}
	}
	return tensor.MatMul(grad, d.W.Value) // [N, In]
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

func panicShape(layer string, x *tensor.Tensor, want int) {
	panic(layer + ": input shape " + x.String() + " incompatible with layer width")
}
