package nn

import (
	"fmt"
	"math"

	"deepfusion/internal/tensor"
)

// This file is the zero-allocation inference surface of the layer
// framework. Every layer gains a ForwardInfer variant that reads its
// weights, writes its output into workspace-pooled buffers, and caches
// nothing for Backward — the steady-state path of the screening
// engine. After one warm-up batch a ForwardInfer pass performs zero
// heap allocations, and its outputs are byte-identical to
// Forward(x, false): identical loops, identical per-element term
// order, only the buffer ownership changes.
//
// ForwardInfer runs serially in the calling goroutine (no ParallelFor)
// — the screening engine's rank goroutines are the parallelism, one
// workspace each, mirroring the paper's one-model-instance-per-GPU
// deployment.

// Workspace owns the pooled buffers and cached weight packings of one
// inference stream. It is not safe for concurrent use; the screening
// engine gives each rank its own.
//
// Packed panels and transposes are cached per weight tensor identity
// and assume the weights are frozen: create workspaces after training
// (rank replicas are cloned from trained models), or drop the
// workspace if weights change.
type Workspace struct {
	Arena *tensor.Arena

	packs map[*tensor.Tensor]*tensor.PackedB
	trans map[*tensor.Tensor]*tensor.Tensor

	// Float32 fast-path caches (infer32.go). The f32 arena and the
	// converted weight forms live beside the f64 ones so a workspace
	// serves whichever precision the batch runs at; conversion happens
	// once per (weights, shape), at pack/cache time.
	Arena32 *tensor.Arena32
	packs32 map[*tensor.Tensor]*tensor.PackedB32
	trans32 map[*tensor.Tensor]*tensor.F32
	vecs32  map[*tensor.Tensor][]float32
	bn32    map[*tensor.Tensor]*bnFold32
}

// NewWorkspace returns an empty inference workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		Arena:   tensor.NewArena(),
		packs:   map[*tensor.Tensor]*tensor.PackedB{},
		trans:   map[*tensor.Tensor]*tensor.Tensor{},
		Arena32: tensor.NewArena32(),
		packs32: map[*tensor.Tensor]*tensor.PackedB32{},
		trans32: map[*tensor.Tensor]*tensor.F32{},
		vecs32:  map[*tensor.Tensor][]float32{},
		bn32:    map[*tensor.Tensor]*bnFold32{},
	}
}

// Reset recycles the per-batch buffers. Cached weight packings persist
// — they are the once-per-(weights, shape) part of the steady state.
func (ws *Workspace) Reset() {
	ws.Arena.Reset()
	ws.Arena32.Reset()
}

// PackedTransposed returns the cached panel packing of wᵀ, viewing w's
// data as a row-major n x k matrix (higher-rank conv kernels collapse).
// Built on first use, reused for the life of the workspace.
func (ws *Workspace) PackedTransposed(w *tensor.Tensor, n, k int) *tensor.PackedB {
	if pb, ok := ws.packs[w]; ok {
		return pb
	}
	pb := &tensor.PackedB{}
	pb.PackTransposed(w.Data, n, k)
	ws.packs[w] = pb
	return pb
}

// Transposed returns the cached materialized transpose of w viewed as
// a row-major n x k matrix, shaped [k, n] — the layout the sparse
// scatter convolution reads.
func (ws *Workspace) Transposed(w *tensor.Tensor, n, k int) *tensor.Tensor {
	if t, ok := ws.trans[w]; ok {
		return t
	}
	t := tensor.New(k, n)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			t.Data[j*n+i] = w.Data[i*k+j]
		}
	}
	ws.trans[w] = t
	return t
}

// InferLayer is the inference-mode counterpart of Layer: a forward
// pass that allocates from the workspace and caches nothing.
type InferLayer interface {
	ForwardInfer(x *tensor.Tensor, ws *Workspace) *tensor.Tensor
}

// ForwardInfer implements InferLayer. Layers that do not implement the
// in-place contract fall back to Forward(x, false) (correct, but
// allocating).
func (s *Sequential) ForwardInfer(x *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	for _, l := range s.Layers {
		if il, ok := l.(InferLayer); ok {
			x = il.ForwardInfer(x, ws)
		} else {
			x = l.Forward(x, false)
		}
	}
	return x
}

// ForwardInfer implements InferLayer: y = x·Wᵀ + b via the packed
// panel kernel against the workspace-cached packing of Wᵀ.
func (d *Dense) ForwardInfer(x *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panicShape("Dense", x, d.In)
	}
	n := x.Dim(0)
	y := ws.Arena.GetUninit(n, d.Out)
	pb := ws.PackedTransposed(d.W.Value, d.Out, d.In)
	tensor.MatMulPackedInto(y, x, pb)
	for i := 0; i < n; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += d.B.Value.Data[j]
		}
	}
	return y
}

// ForwardInfer implements InferLayer.
func (a *Activation) ForwardInfer(x *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	out := ws.Arena.GetUninit(x.Shape...)
	switch a.Kind {
	case ActReLU:
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = 0
			}
		}
	case ActLReLU:
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = a.Slope * v
			}
		}
	case ActSELU:
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = seluLambda * v
			} else {
				out.Data[i] = seluLambda * seluAlpha * (math.Exp(v) - 1)
			}
		}
	default:
		panic("nn: unknown activation " + a.Kind)
	}
	return out
}

// ForwardInfer implements InferLayer. Inference dropout is the
// identity, exactly like Forward with train=false.
func (d *Dropout) ForwardInfer(x *tensor.Tensor, ws *Workspace) *tensor.Tensor { return x }

// ForwardInfer implements InferLayer: a pooled view, the workspace
// counterpart of Reshape.
func (f *Flatten) ForwardInfer(x *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	n := x.Dim(0)
	return ws.Arena.View(x.Data, n, x.Len()/n)
}

// ForwardInfer implements InferLayer: evaluation-mode normalization
// with running statistics, as Forward(x, false).
func (b *BatchNorm) ForwardInfer(x *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != b.F {
		panic("nn: BatchNorm expects [N, F] input matching layer width")
	}
	n := x.Dim(0)
	out := ws.Arena.GetUninit(x.Shape...)
	for i := 0; i < n; i++ {
		xr, or := x.Row(i), out.Row(i)
		for j := 0; j < b.F; j++ {
			xh := (xr[j] - b.RunMean[j]) / math.Sqrt(b.RunVar[j]+b.Eps)
			or[j] = b.Gamma.Value.Data[j]*xh + b.Beta.Value.Data[j]
		}
	}
	return out
}

// ForwardInfer implements InferLayer: the same window argmax loops as
// Forward without recording the winners for Backward.
func (m *MaxPool3D) ForwardInfer(x *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	n, c, d, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	k := m.K
	if d%k != 0 || h%k != 0 || w%k != 0 {
		panic("nn: MaxPool3D window does not divide grid")
	}
	od, oh, ow := d/k, h/k, w/k
	out := ws.Arena.GetUninit(n, c, od, oh, ow)
	perChan := od * oh * ow
	for nc := 0; nc < n*c; nc++ {
		ni, ci := nc/c, nc%c
		oi := nc * perChan
		for zd := 0; zd < od; zd++ {
			for zh := 0; zh < oh; zh++ {
				for zw := 0; zw < ow; zw++ {
					bestV := 0.0
					first := true
					for kd := 0; kd < k; kd++ {
						for kh := 0; kh < k; kh++ {
							for kw := 0; kw < k; kw++ {
								fi := ((((ni*c+ci)*d+zd*k+kd)*h + zh*k + kh) * w) + zw*k + kw
								if first || x.Data[fi] > bestV {
									bestV = x.Data[fi]
									first = false
								}
							}
						}
					}
					out.Data[oi] = bestV
					oi++
				}
			}
		}
	}
	return out
}

// ForwardInfer implements InferLayer for the convolution: the same
// algorithm selection as Forward (direct reference loops, sparse
// scatter for cache-resident outputs, im2col GEMM tiles otherwise)
// with workspace-pooled scratch, the packed panel kernel against the
// once-per-workspace packing of the kernel matrix, and — for the
// scatter path — a position-major accumulator so every scatter write
// lands in one cache line instead of striding Out channel planes.
// Per-element accumulation order is identical to Forward, so outputs
// are byte-identical.
func (c *Conv3D) ForwardInfer(x *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	if x.Rank() != 5 || x.Dim(1) != c.In {
		panic(fmt.Sprintf("nn: Conv3D expects [N,%d,D,H,W], got %v", c.In, x.Shape))
	}
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	k := c.K
	dhw := d * h * w
	ck3 := c.In * k * k * k
	out := ws.Arena.GetUninit(n, c.Out, d, h, w)
	if c.Direct {
		c.directInto(x, out)
		return out
	}
	if c.Out*dhw*8 <= scatterMaxBytes {
		c.scatterInfer(x, out, ws.Transposed(c.W.Value, c.Out, ck3), ws)
		return out
	}
	// Tile path: im2col patches are sparse (voxel occupancy), so the
	// zero-skip scalar kernel against the cached kernel transpose beats
	// the panel kernel — one data-dependent branch per patch value,
	// skipping a whole Out-wide row. The packed panel kernel is for the
	// dense x·Wᵀ layer products.
	wt := ws.Transposed(c.W.Value, c.Out, ck3)
	tile := dhw
	if tile > convTile {
		tile = convTile
	}
	for b := 0; b < n; b++ {
		for lo := 0; lo < dhw; lo += tile {
			hi := lo + tile
			if hi > dhw {
				hi = dhw
			}
			rows := hi - lo
			ct := ws.Arena.GetUninit(rows, ck3) // Im2Col3D zeroes it
			yt := ws.Arena.GetUninit(rows, c.Out)
			tensor.Im2Col3D(x, b, k, lo, hi, ct)
			// Seed every position with the bias, then accumulate the
			// patch GEMM on top (same term order as Forward).
			for r := 0; r < rows; r++ {
				copy(yt.Data[r*c.Out:(r+1)*c.Out], c.B.Value.Data)
			}
			tensor.MatMulAcc(yt, ct, wt)
			for o := 0; o < c.Out; o++ {
				dst := out.Data[(b*c.Out+o)*dhw+lo : (b*c.Out+o)*dhw+hi]
				for r := range dst {
					dst[r] = yt.Data[r*c.Out+o]
				}
			}
			ws.Arena.Put(yt)
			ws.Arena.Put(ct)
		}
	}
	return out
}

// scatterInfer is the pooled sparse-scatter forward. It accumulates
// into a position-major [DHW, Out] buffer — each nonzero voxel's
// kernel footprint updates Out contiguous values per position, one
// cache line, where forwardScatter strides Out channel planes — then
// transposes once into the [Out, D, H, W] output block. Grid-boundary
// clipping is hoisted out of the kernel loops (the surviving offsets
// run branch-free) and the channel update is unrolled 8 lanes at a
// time for the production filter counts. Per-element term order
// matches forwardScatter exactly: for every output element, surviving
// terms arrive in ascending (ci, input-position) order.
func (c *Conv3D) scatterInfer(x, out, wt *tensor.Tensor, ws *Workspace) {
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	k := c.K
	pad := k / 2
	dhw := d * h * w
	hw := h * w
	nOut := c.Out
	unroll8 := nOut%8 == 0
	posBuf := ws.Arena.GetUninit(dhw, nOut)
	pd := posBuf.Data
	wd := wt.Data
	for b := 0; b < n; b++ {
		for pos := 0; pos < dhw; pos++ {
			copy(pd[pos*nOut:(pos+1)*nOut], c.B.Value.Data)
		}
		for ci := 0; ci < c.In; ci++ {
			chBase := (b*c.In + ci) * dhw
			for ip, v := range x.Data[chBase : chBase+dhw] {
				if v == 0 {
					continue
				}
				id, rem := ip/hw, ip%hw
				ih, iw := rem/w, rem%w
				// Valid kernel ranges: zd = id+pad-kd must land in
				// [0, d), and likewise for the other axes.
				kdLo, kdHi := clipK(id, pad, d, k)
				khLo, khHi := clipK(ih, pad, h, k)
				kwLo, kwHi := clipK(iw, pad, w, k)
				for kd := kdLo; kd <= kdHi; kd++ {
					zd := id + pad - kd
					for kh := khLo; kh <= khHi; kh++ {
						zh := ih + pad - kh
						wBase := ((ci*k+kd)*k + kh) * k
						posRow := (zd*h + zh) * w
						if unroll8 {
							// zw walks down one position per kw step, so
							// both offsets advance by a constant stride.
							wOff := (wBase + kwLo) * nOut
							pOff := (posRow + iw + pad - kwLo) * nOut
							for kw := kwLo; kw <= kwHi; kw++ {
								for o := 0; o < nOut; o += 8 {
									wr := wd[wOff+o : wOff+o+8 : wOff+o+8]
									dr := pd[pOff+o : pOff+o+8 : pOff+o+8]
									dr[0] += wr[0] * v
									dr[1] += wr[1] * v
									dr[2] += wr[2] * v
									dr[3] += wr[3] * v
									dr[4] += wr[4] * v
									dr[5] += wr[5] * v
									dr[6] += wr[6] * v
									dr[7] += wr[7] * v
								}
								wOff += nOut
								pOff -= nOut
							}
						} else {
							for kw := kwLo; kw <= kwHi; kw++ {
								pos := posRow + iw + pad - kw
								wRow := wd[(wBase+kw)*nOut : (wBase+kw+1)*nOut]
								dst := pd[pos*nOut : pos*nOut+nOut]
								for o, wv := range wRow {
									dst[o] += wv * v
								}
							}
						}
					}
				}
			}
		}
		outS := out.Data[b*nOut*dhw : (b+1)*nOut*dhw]
		for pos := 0; pos < dhw; pos++ {
			row := pd[pos*nOut : (pos+1)*nOut]
			for o, v := range row {
				outS[o*dhw+pos] = v
			}
		}
	}
	ws.Arena.Put(posBuf)
}

// clipK returns the inclusive kernel-offset range [lo, hi] for which
// the mirrored position i+pad-k stays inside [0, dim).
func clipK(i, pad, dim, k int) (lo, hi int) {
	lo, hi = i+pad-dim+1, i+pad
	if lo < 0 {
		lo = 0
	}
	if hi > k-1 {
		hi = k - 1
	}
	return lo, hi
}

// directInto is the serial reference convolution writing into a
// caller-owned output — forwardDirect's loops without the ParallelFor
// (rank goroutines are the inference parallelism).
func (c *Conv3D) directInto(x, out *tensor.Tensor) {
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	pad := c.K / 2
	k := c.K
	dhw := d * h * w
	for ni := 0; ni < n; ni++ {
		for co := 0; co < c.Out; co++ {
			bias := c.B.Value.Data[co]
			oBase := (ni*c.Out + co) * dhw
			for zd := 0; zd < d; zd++ {
				for zh := 0; zh < h; zh++ {
					for zw := 0; zw < w; zw++ {
						s := bias
						for ci := 0; ci < c.In; ci++ {
							for kd := 0; kd < k; kd++ {
								id := zd + kd - pad
								if id < 0 || id >= d {
									continue
								}
								for kh := 0; kh < k; kh++ {
									ih := zh + kh - pad
									if ih < 0 || ih >= h {
										continue
									}
									xBase := ((ni*c.In+ci)*d+id)*h + ih
									wBase := (((co*c.In+ci)*k+kd)*k + kh) * k
									xRow := x.Data[xBase*w : xBase*w+w]
									wRow := c.W.Value.Data[wBase : wBase+k]
									for kw := 0; kw < k; kw++ {
										iw := zw + kw - pad
										if iw < 0 || iw >= w {
											continue
										}
										s += xRow[iw] * wRow[kw]
									}
								}
							}
						}
						out.Data[oBase+(zd*h+zh)*w+zw] = s
					}
				}
			}
		}
	}
}
