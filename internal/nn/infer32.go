package nn

import (
	"fmt"
	"math"

	"deepfusion/internal/tensor"
)

// This file is the float32 inference fast path: a ForwardInfer32
// variant of every inference layer, mirroring infer.go loop for loop
// at half the element width. Weights convert from the f64 training
// tensors exactly once per workspace — at panel-pack, transpose-cache
// or vector-cache time — and everything between the batch tensor and
// the final score stays float32. Algorithm selection (scatter vs tile
// convolution, panel widths, tile sizes) is byte-for-byte the same as
// the f64 path so both precisions run the same code shape per config;
// only rounding differs, which the A/B harness pins at the funnel
// level and the tolerance tests pin per layer.

// bnFold32 is the evaluation-mode BatchNorm folded to one multiply-add
// per element: scale = γ/√(var+ε), shift = β − mean·scale.
type bnFold32 struct {
	scale, shift []float32
}

// Packed32Transposed returns the cached f32 panel packing of wᵀ,
// converting the float64 weights while packing (the single f64→f32
// conversion point of the dense products).
func (ws *Workspace) Packed32Transposed(w *tensor.Tensor, n, k int) *tensor.PackedB32 {
	if pb, ok := ws.packs32[w]; ok {
		return pb
	}
	pb := &tensor.PackedB32{}
	pb.PackTransposed64(w.Data, n, k)
	ws.packs32[w] = pb
	return pb
}

// Transposed32 returns the cached f32 materialized transpose of w
// viewed as a row-major n x k matrix, shaped [k, n] — the layout the
// sparse scatter and tile convolutions read.
func (ws *Workspace) Transposed32(w *tensor.Tensor, n, k int) *tensor.F32 {
	if t, ok := ws.trans32[w]; ok {
		return t
	}
	t := tensor.Transpose64To32(w.Data, n, k)
	ws.trans32[w] = t
	return t
}

// Vec32 returns the cached f32 conversion of a frozen parameter
// vector (biases, and the direct convolution's flat kernel).
func (ws *Workspace) Vec32(v *tensor.Tensor) []float32 {
	if c, ok := ws.vecs32[v]; ok {
		return c
	}
	c := make([]float32, len(v.Data))
	for i, x := range v.Data {
		c[i] = float32(x)
	}
	ws.vecs32[v] = c
	return c
}

// folded32 returns the cached folded normalization of b, keyed by the
// frozen gamma tensor.
func (ws *Workspace) folded32(b *BatchNorm) *bnFold32 {
	if f, ok := ws.bn32[b.Gamma.Value]; ok {
		return f
	}
	f := &bnFold32{scale: make([]float32, b.F), shift: make([]float32, b.F)}
	for j := 0; j < b.F; j++ {
		s := b.Gamma.Value.Data[j] / math.Sqrt(b.RunVar[j]+b.Eps)
		f.scale[j] = float32(s)
		f.shift[j] = float32(b.Beta.Value.Data[j] - b.RunMean[j]*s)
	}
	ws.bn32[b.Gamma.Value] = f
	return f
}

// InferLayer32 is the float32 counterpart of InferLayer.
type InferLayer32 interface {
	ForwardInfer32(x *tensor.F32, ws *Workspace) *tensor.F32
}

// ForwardInfer32 implements InferLayer32. Unlike the f64 chain there
// is no allocating fallback — every inference layer implements the
// f32 contract, and a layer that does not is a programming error.
func (s *Sequential) ForwardInfer32(x *tensor.F32, ws *Workspace) *tensor.F32 {
	for _, l := range s.Layers {
		il, ok := l.(InferLayer32)
		if !ok {
			panic(fmt.Sprintf("nn: layer %T has no float32 inference path", l))
		}
		x = il.ForwardInfer32(x, ws)
	}
	return x
}

// ForwardInfer32 implements InferLayer32: y = x·Wᵀ + b via the f32
// panel kernel against the workspace-cached packing of Wᵀ.
func (d *Dense) ForwardInfer32(x *tensor.F32, ws *Workspace) *tensor.F32 {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: Dense expects [N, %d] input, got %v", d.In, x.Shape))
	}
	n := x.Dim(0)
	y := ws.Arena32.GetUninit(n, d.Out)
	pb := ws.Packed32Transposed(d.W.Value, d.Out, d.In)
	tensor.MatMulPacked32Into(y, x, pb)
	b := ws.Vec32(d.B.Value)
	for i := 0; i < n; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += b[j]
		}
	}
	return y
}

// ForwardInfer32 implements InferLayer32.
func (a *Activation) ForwardInfer32(x *tensor.F32, ws *Workspace) *tensor.F32 {
	out := ws.Arena32.GetUninit(x.Shape...)
	switch a.Kind {
	case ActReLU:
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = 0
			}
		}
	case ActLReLU:
		slope := float32(a.Slope)
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = slope * v
			}
		}
	case ActSELU:
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = float32(seluLambda) * v
			} else {
				// The exponential runs in f64 (stdlib has no float32
				// exp); the result narrows like every other op.
				out.Data[i] = float32(seluLambda * seluAlpha * (math.Exp(float64(v)) - 1))
			}
		}
	default:
		panic("nn: unknown activation " + a.Kind)
	}
	return out
}

// ForwardInfer32 implements InferLayer32: inference dropout is the
// identity.
func (d *Dropout) ForwardInfer32(x *tensor.F32, ws *Workspace) *tensor.F32 { return x }

// ForwardInfer32 implements InferLayer32: a pooled view.
func (f *Flatten) ForwardInfer32(x *tensor.F32, ws *Workspace) *tensor.F32 {
	n := x.Dim(0)
	return ws.Arena32.View(x.Data, n, x.Len()/n)
}

// ForwardInfer32 implements InferLayer32: evaluation-mode
// normalization via the cached folded scale/shift (one multiply-add
// per element; algebraically identical to the f64 form, differing
// only in rounding).
func (b *BatchNorm) ForwardInfer32(x *tensor.F32, ws *Workspace) *tensor.F32 {
	if x.Rank() != 2 || x.Dim(1) != b.F {
		panic("nn: BatchNorm expects [N, F] input matching layer width")
	}
	n := x.Dim(0)
	f := ws.folded32(b)
	out := ws.Arena32.GetUninit(x.Shape...)
	for i := 0; i < n; i++ {
		xr, or := x.Row(i), out.Row(i)
		for j := 0; j < b.F; j++ {
			or[j] = f.scale[j]*xr[j] + f.shift[j]
		}
	}
	return out
}

// ForwardInfer32 implements InferLayer32: the same window argmax
// loops as the f64 path.
func (m *MaxPool3D) ForwardInfer32(x *tensor.F32, ws *Workspace) *tensor.F32 {
	n, c, d, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	k := m.K
	if d%k != 0 || h%k != 0 || w%k != 0 {
		panic("nn: MaxPool3D window does not divide grid")
	}
	od, oh, ow := d/k, h/k, w/k
	out := ws.Arena32.GetUninit(n, c, od, oh, ow)
	perChan := od * oh * ow
	for nc := 0; nc < n*c; nc++ {
		ni, ci := nc/c, nc%c
		oi := nc * perChan
		for zd := 0; zd < od; zd++ {
			for zh := 0; zh < oh; zh++ {
				for zw := 0; zw < ow; zw++ {
					var bestV float32
					first := true
					for kd := 0; kd < k; kd++ {
						for kh := 0; kh < k; kh++ {
							for kw := 0; kw < k; kw++ {
								fi := ((((ni*c+ci)*d+zd*k+kd)*h + zh*k + kh) * w) + zw*k + kw
								if first || x.Data[fi] > bestV {
									bestV = x.Data[fi]
									first = false
								}
							}
						}
					}
					out.Data[oi] = bestV
					oi++
				}
			}
		}
	}
	return out
}

// ForwardInfer32 implements InferLayer32 for the convolution. The
// algorithm selection is deliberately byte-identical to ForwardInfer —
// including the 8-bytes-per-element scatter threshold — so a given
// layer shape runs the same algorithm at both precisions and the f32
// path differs from the reference only in rounding, never in code
// shape.
func (c *Conv3D) ForwardInfer32(x *tensor.F32, ws *Workspace) *tensor.F32 {
	if x.Rank() != 5 || x.Dim(1) != c.In {
		panic(fmt.Sprintf("nn: Conv3D expects [N,%d,D,H,W], got %v", c.In, x.Shape))
	}
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	k := c.K
	dhw := d * h * w
	ck3 := c.In * k * k * k
	out := ws.Arena32.GetUninit(n, c.Out, d, h, w)
	if c.Direct {
		c.directInto32(x, out, ws)
		return out
	}
	if c.Out*dhw*8 <= scatterMaxBytes {
		c.scatterInfer32(x, out, ws.Transposed32(c.W.Value, c.Out, ck3), ws)
		return out
	}
	// Tile path: sparse im2col patches, zero-skip scalar GEMM against
	// the cached f32 kernel transpose (see ForwardInfer for why the
	// panel kernel loses here).
	wt := ws.Transposed32(c.W.Value, c.Out, ck3)
	bias := ws.Vec32(c.B.Value)
	tile := dhw
	if tile > convTile {
		tile = convTile
	}
	for b := 0; b < n; b++ {
		for lo := 0; lo < dhw; lo += tile {
			hi := lo + tile
			if hi > dhw {
				hi = dhw
			}
			rows := hi - lo
			ct := ws.Arena32.GetUninit(rows, ck3) // Im2Col3D32 zeroes it
			yt := ws.Arena32.GetUninit(rows, c.Out)
			tensor.Im2Col3D32(x, b, k, lo, hi, ct)
			for r := 0; r < rows; r++ {
				copy(yt.Data[r*c.Out:(r+1)*c.Out], bias)
			}
			tensor.MatMulAcc32(yt, ct, wt)
			for o := 0; o < c.Out; o++ {
				dst := out.Data[(b*c.Out+o)*dhw+lo : (b*c.Out+o)*dhw+hi]
				for r := range dst {
					dst[r] = yt.Data[r*c.Out+o]
				}
			}
			ws.Arena32.Put(yt)
			ws.Arena32.Put(ct)
		}
	}
	return out
}

// scatterInfer32 is the f32 pooled sparse-scatter forward, mirroring
// scatterInfer: position-major [DHW, Out] accumulator, hoisted
// grid-boundary clipping, final transpose into the [Out, D, H, W]
// output block. The channel accumulation runs through tensor.Axpy32 —
// the lanes are independent accumulators, so the vector kernel is
// bit-identical to the reference scalar order.
func (c *Conv3D) scatterInfer32(x, out, wt *tensor.F32, ws *Workspace) {
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	k := c.K
	pad := k / 2
	dhw := d * h * w
	hw := h * w
	nOut := c.Out
	bias := ws.Vec32(c.B.Value)
	posBuf := ws.Arena32.GetUninit(dhw, nOut)
	pd := posBuf.Data
	wd := wt.Data
	for b := 0; b < n; b++ {
		for pos := 0; pos < dhw; pos++ {
			copy(pd[pos*nOut:(pos+1)*nOut], bias)
		}
		for ci := 0; ci < c.In; ci++ {
			chBase := (b*c.In + ci) * dhw
			for ip, v := range x.Data[chBase : chBase+dhw] {
				if v == 0 {
					continue
				}
				id, rem := ip/hw, ip%hw
				ih, iw := rem/w, rem%w
				kdLo, kdHi := clipK(id, pad, d, k)
				khLo, khHi := clipK(ih, pad, h, k)
				kwLo, kwHi := clipK(iw, pad, w, k)
				for kd := kdLo; kd <= kdHi; kd++ {
					zd := id + pad - kd
					for kh := khLo; kh <= khHi; kh++ {
						zh := ih + pad - kh
						wBase := ((ci*k+kd)*k + kh) * k
						posRow := (zd*h + zh) * w
						wOff := (wBase + kwLo) * nOut
						pOff := (posRow + iw + pad - kwLo) * nOut
						for kw := kwLo; kw <= kwHi; kw++ {
							tensor.Axpy32(pd[pOff:pOff+nOut:pOff+nOut], wd[wOff:wOff+nOut], v)
							wOff += nOut
							pOff -= nOut
						}
					}
				}
			}
		}
		outS := out.Data[b*nOut*dhw : (b+1)*nOut*dhw]
		for pos := 0; pos < dhw; pos++ {
			row := pd[pos*nOut : (pos+1)*nOut]
			for o, v := range row {
				outS[o*dhw+pos] = v
			}
		}
	}
	ws.Arena32.Put(posBuf)
}

// directInto32 is the serial reference convolution over f32 operands,
// reading the cached f32 conversion of the flat kernel tensor.
func (c *Conv3D) directInto32(x, out *tensor.F32, ws *Workspace) {
	n, d, h, w := x.Dim(0), x.Dim(2), x.Dim(3), x.Dim(4)
	pad := c.K / 2
	k := c.K
	dhw := d * h * w
	wf := ws.Vec32(c.W.Value)
	bias := ws.Vec32(c.B.Value)
	for ni := 0; ni < n; ni++ {
		for co := 0; co < c.Out; co++ {
			b := bias[co]
			oBase := (ni*c.Out + co) * dhw
			for zd := 0; zd < d; zd++ {
				for zh := 0; zh < h; zh++ {
					for zw := 0; zw < w; zw++ {
						s := b
						for ci := 0; ci < c.In; ci++ {
							for kd := 0; kd < k; kd++ {
								id := zd + kd - pad
								if id < 0 || id >= d {
									continue
								}
								for kh := 0; kh < k; kh++ {
									ih := zh + kh - pad
									if ih < 0 || ih >= h {
										continue
									}
									xBase := ((ni*c.In+ci)*d+id)*h + ih
									wBase := (((co*c.In+ci)*k+kd)*k + kh) * k
									xRow := x.Data[xBase*w : xBase*w+w]
									wRow := wf[wBase : wBase+k]
									for kw := 0; kw < k; kw++ {
										iw := zw + kw - pad
										if iw < 0 || iw >= w {
											continue
										}
										s += xRow[iw] * wRow[kw]
									}
								}
							}
						}
						out.Data[oBase+(zd*h+zh)*w+zw] = s
					}
				}
			}
		}
	}
}
