package nn

import (
	"math"
	"math/rand"
	"testing"

	"deepfusion/internal/tensor"
)

// randInput32Pair builds the same random input at both precisions
// (f32 values widened back to f64, so the inputs are bit-equal).
func randInput32Pair(rng *rand.Rand, sparse bool, shape ...int) (*tensor.Tensor, *tensor.F32) {
	x32 := tensor.NewF32(shape...)
	x64 := tensor.New(shape...)
	for i := range x32.Data {
		v := float32(rng.NormFloat64())
		if sparse && rng.Intn(3) != 0 {
			v = 0 // voxel-like sparsity exercises the zero-skip paths
		}
		x32.Data[i] = v
		x64.Data[i] = float64(v)
	}
	return x64, x32
}

// maxRelErr32 returns max |got-want| / max(1, |want|) over the pair.
func maxRelErr32(got *tensor.F32, want *tensor.Tensor) float64 {
	worst := 0.0
	for i, w := range want.Data {
		den := math.Abs(w)
		if den < 1 {
			den = 1
		}
		if e := math.Abs(float64(got.Data[i])-w) / den; e > worst {
			worst = e
		}
	}
	return worst
}

// TestConv3DInfer32BoundaryClipping pins the f32 scatter and tile
// convolutions against the f32 direct reference bitwise: surviving
// terms arrive in the same ascending (ci, input-position) order in
// all three kernels, so boundary clipping must not change a single
// bit. Grids are chosen so kernel footprints clip on every face.
func TestConv3DInfer32BoundaryClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cases := []struct {
		name        string
		in, out, k  int
		d, h, w     int
		wantScatter bool // which algorithm ForwardInfer32 should pick
	}{
		// 4^3 grid with k=5: footprints clip on both faces of every axis.
		{"scatter-k5-tiny", 2, 8, 5, 4, 4, 4, true},
		// Non-unrollable channel count exercises the vector kernel's
		// scalar tail lanes.
		{"scatter-k3-odd-out", 3, 6, 3, 5, 4, 3, true},
		// 41^3 at Out=64 exceeds scatterMaxBytes -> tile path.
		{"tile-k3", 1, 64, 3, 41, 41, 41, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConv3D(rng, tc.in, tc.out, tc.k)
			dhw := tc.d * tc.h * tc.w
			if got := tc.out*dhw*8 <= scatterMaxBytes; got != tc.wantScatter {
				t.Fatalf("algorithm selection: scatter=%v, want %v", got, tc.wantScatter)
			}
			_, x32 := randInput32Pair(rng, true, 2, tc.in, tc.d, tc.h, tc.w)

			ws := NewWorkspace()
			y := c.ForwardInfer32(x32, ws)

			ref := tensor.NewF32(2, tc.out, tc.d, tc.h, tc.w)
			c.directInto32(x32, ref, ws)
			for i := range ref.Data {
				if y.Data[i] != ref.Data[i] {
					t.Fatalf("elem %d = %g, want %g (bitwise)", i, y.Data[i], ref.Data[i])
				}
			}
		})
	}
}

// TestInfer32MatchesF64Tolerance pins the f32 accumulation error of
// every layer kind against the f64 reference at ≤1e-4 relative — the
// explicit per-layer tolerance contract of the fast path (the funnel
// repeats this per pose at the fusion level).
func TestInfer32MatchesF64Tolerance(t *testing.T) {
	const tol = 1e-4
	rng := rand.New(rand.NewSource(72))

	t.Run("dense-chain", func(t *testing.T) {
		seq := NewSequential(
			NewDense(rng, 33, 20),
			NewActivation(ActReLU),
			NewDense(rng, 20, 12),
			NewActivation(ActLReLU),
			NewDense(rng, 12, 7),
			NewActivation(ActSELU),
			NewDropout(rng, 0.25),
			NewDense(rng, 7, 1),
		)
		x64, x32 := randInput32Pair(rng, false, 9, 33)
		ws := NewWorkspace()
		want := seq.ForwardInfer(x64, ws)
		got := seq.ForwardInfer32(x32, ws)
		if e := maxRelErr32(got, want); e > tol {
			t.Fatalf("dense chain rel err %g > %g", e, tol)
		}
	})

	t.Run("batchnorm", func(t *testing.T) {
		bn := NewBatchNorm(11)
		for j := 0; j < 11; j++ {
			bn.RunMean[j] = rng.NormFloat64()
			bn.RunVar[j] = 0.5 + rng.Float64()
			bn.Gamma.Value.Data[j] = 1 + 0.3*rng.NormFloat64()
			bn.Beta.Value.Data[j] = rng.NormFloat64()
		}
		x64, x32 := randInput32Pair(rng, false, 6, 11)
		ws := NewWorkspace()
		want := bn.ForwardInfer(x64, ws)
		got := bn.ForwardInfer32(x32, ws)
		if e := maxRelErr32(got, want); e > tol {
			t.Fatalf("batchnorm rel err %g > %g", e, tol)
		}
	})

	t.Run("conv-pool-flatten", func(t *testing.T) {
		conv := NewConv3D(rng, 3, 8, 3)
		pool := NewMaxPool3D(2)
		flat := &Flatten{}
		x64, x32 := randInput32Pair(rng, true, 2, 3, 6, 6, 6)
		ws := NewWorkspace()
		want := flat.ForwardInfer(pool.ForwardInfer(conv.ForwardInfer(x64, ws), ws), ws)
		got := flat.ForwardInfer32(pool.ForwardInfer32(conv.ForwardInfer32(x32, ws), ws), ws)
		if want.Dim(0) != got.Dim(0) || want.Dim(1) != got.Dim(1) {
			t.Fatalf("shape %v vs %v", got.Shape, want.Shape)
		}
		if e := maxRelErr32(got, want); e > tol {
			t.Fatalf("conv/pool rel err %g > %g", e, tol)
		}
	})
}

// TestInfer32WarmZeroAlloc pins the f32 layer path to the same
// zero-allocation steady state as the f64 one.
func TestInfer32WarmZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	conv := NewConv3D(rng, 2, 8, 3)
	pool := NewMaxPool3D(2)
	flat := &Flatten{}
	dense := NewDense(rng, 8*3*3*3, 5)
	act := NewActivation(ActReLU)
	_, x32 := randInput32Pair(rng, true, 2, 2, 6, 6, 6)
	ws := NewWorkspace()
	pass := func() {
		y := conv.ForwardInfer32(x32, ws)
		y = pool.ForwardInfer32(y, ws)
		f := flat.ForwardInfer32(y, ws)
		o := act.ForwardInfer32(dense.ForwardInfer32(f, ws), ws)
		_ = o
		ws.Reset()
	}
	pass()
	pass()
	if allocs := testing.AllocsPerRun(20, pass); allocs != 0 {
		t.Fatalf("warm f32 layer pass allocates %v times", allocs)
	}
}
