package nn

import (
	"math/rand"
	"testing"

	"deepfusion/internal/tensor"
)

// inferInput builds a sparse voxel-like batch (many exact zeros, like
// splatted grids) so the scatter conv path is exercised realistically.
func inferInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		if rng.Float64() < 0.2 {
			x.Data[i] = rng.NormFloat64()
		}
	}
	return x
}

// TestForwardInferMatchesForward pins every layer's inference variant
// byte-identical to Forward(x, false) — the foundation of the pooled
// scoring path's golden guarantee.
func TestForwardInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := NewWorkspace()

	check := func(name string, want, got *tensor.Tensor) {
		t.Helper()
		if !want.SameShape(got) {
			t.Fatalf("%s: shape %v vs %v", name, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%s: elem %d: infer %v != forward %v", name, i, got.Data[i], want.Data[i])
			}
		}
	}

	// Conv3D, scatter path (small output) and both kernel sizes.
	for _, k := range []int{3, 5} {
		c := NewConv3D(rng, 2, 3, k)
		x := inferInput(rng, 2, 2, 4, 4, 4)
		check("Conv3D/scatter", c.Forward(x, false), c.ForwardInfer(x, ws))
		ws.Reset()
	}
	// Conv3D, tiled im2col path (output above scatterMaxBytes).
	{
		c := NewConv3D(rng, 1, 64, 3)
		x := inferInput(rng, 1, 1, 41, 41, 41) // 64*41^3*8 > scatterMaxBytes
		if c.Out*x.Dim(2)*x.Dim(3)*x.Dim(4)*8 <= scatterMaxBytes {
			t.Fatalf("test geometry no longer reaches the tiled path")
		}
		check("Conv3D/tiled", c.Forward(x, false), c.ForwardInfer(x, ws))
		ws.Reset()
	}
	// Conv3D, direct reference path.
	{
		c := NewConv3D(rng, 2, 3, 3)
		c.Direct = true
		x := inferInput(rng, 2, 2, 4, 4, 4)
		check("Conv3D/direct", c.Forward(x, false), c.ForwardInfer(x, ws))
		ws.Reset()
	}
	// Dense (widths exercising full panels and the tail).
	for _, out := range []int{1, 7, 8, 19, 32} {
		d := NewDense(rng, 13, out)
		x := inferInput(rng, 4, 13)
		check("Dense", d.Forward(x, false), d.ForwardInfer(x, ws))
		ws.Reset()
	}
	// Activations.
	for _, kind := range []string{ActReLU, ActLReLU, ActSELU} {
		a := NewActivation(kind)
		x := inferInput(rng, 3, 9)
		check("Activation/"+kind, a.Forward(x, false), a.ForwardInfer(x, ws))
		ws.Reset()
	}
	// MaxPool3D.
	{
		m := NewMaxPool3D(2)
		x := inferInput(rng, 2, 3, 4, 4, 4)
		check("MaxPool3D", m.Forward(x, false), m.ForwardInfer(x, ws))
		ws.Reset()
	}
	// BatchNorm in evaluation mode, with non-trivial running stats.
	{
		b := NewBatchNorm(6)
		for j := 0; j < 6; j++ {
			b.RunMean[j] = rng.NormFloat64()
			b.RunVar[j] = 1 + rng.Float64()
		}
		x := inferInput(rng, 5, 6)
		check("BatchNorm", b.Forward(x, false), b.ForwardInfer(x, ws))
		ws.Reset()
	}
	// Dropout is the identity at inference.
	{
		d := NewDropout(rng, 0.5)
		x := inferInput(rng, 3, 4)
		if got := d.ForwardInfer(x, ws); got != x {
			t.Fatalf("Dropout.ForwardInfer should return its input")
		}
	}
	// Flatten + Sequential plumbing.
	{
		s := NewSequential(NewMaxPool3D(2), &Flatten{}, NewDense(rng, 3*2*2*2, 4), NewActivation(ActReLU))
		x := inferInput(rng, 2, 3, 4, 4, 4)
		check("Sequential", s.Forward(x, false), s.ForwardInfer(x, ws))
		ws.Reset()
	}
}

// TestForwardInferZeroAlloc pins the steady state: a warm ForwardInfer
// pass through a conv/pool/dense stack performs zero heap allocations.
func TestForwardInferZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	conv := NewConv3D(rng, 2, 3, 3)
	pool := NewMaxPool3D(2)
	flat := &Flatten{}
	dense := NewDense(rng, 3*2*2*2, 4)
	act := NewActivation(ActReLU)
	x := inferInput(rng, 2, 2, 4, 4, 4)
	ws := NewWorkspace()
	pass := func() {
		ws.Reset()
		h := conv.ForwardInfer(x, ws)
		h = pool.ForwardInfer(h, ws)
		h = flat.ForwardInfer(h, ws)
		h = act.ForwardInfer(dense.ForwardInfer(h, ws), ws)
	}
	for i := 0; i < 3; i++ {
		pass()
	}
	if avg := testing.AllocsPerRun(50, pass); avg != 0 {
		t.Fatalf("warm ForwardInfer pass allocates %.1f times per run, want 0", avg)
	}
}
