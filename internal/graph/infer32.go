package graph

import (
	"deepfusion/internal/featurize"
	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// Float32 inference surface of the graph stages, mirroring infer.go:
// the same loops and per-element term order at half the element width,
// with weight matrices converted once per workspace through their f32
// panel packings. The gate nonlinearities keep the f64 versions'
// branch structure and clamps; the exponential itself runs in f64
// (stdlib) and narrows, like the nn package's SELU.

func sigmoid32(v float32) float32 {
	if v >= 0 {
		e := float32(exp(float64(-v)))
		return 1 / (1 + e)
	}
	e := float32(exp(float64(v)))
	return e / (1 + e)
}

func tanh32(v float32) float32 {
	if v > 20 {
		return 1
	}
	if v < -20 {
		return -1
	}
	e2 := float32(exp(float64(2 * v)))
	return (e2 - 1) / (e2 + 1)
}

// ForwardInfer32 is the f32 inference projection: x·Wᵀ + b into
// pooled buffers.
func (p *Project) ForwardInfer32(x *tensor.F32, ws *nn.Workspace) *tensor.F32 {
	out := ws.Arena32.GetUninit(x.Dim(0), p.Out)
	tensor.MatMulPacked32Into(out, x, ws.Packed32Transposed(p.W.Value, p.Out, p.In))
	b := ws.Vec32(p.B.Value)
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += b[j]
		}
	}
	return out
}

// ForwardInfer32 runs the K gated message-passing steps over f32
// operands with workspace-pooled step tensors and packed products.
func (g *GGConv) ForwardInfer32(h *tensor.F32, edges []featurize.Edge, ws *nn.Workspace) *tensor.F32 {
	n := h.Dim(0)
	inDeg := ws.Arena32.Get(n)
	for _, e := range edges {
		inDeg.Data[e.To]++
	}
	wmsg := ws.Packed32Transposed(g.Wmsg.Value, g.H, g.H)
	uz := ws.Packed32Transposed(g.Uz.Value, g.H, g.H)
	wz := ws.Packed32Transposed(g.Wz.Value, g.H, g.H)
	uh := ws.Packed32Transposed(g.Uh.Value, g.H, g.H)
	wh := ws.Packed32Transposed(g.Wh.Value, g.H, g.H)
	bz := ws.Vec32(g.Bz.Value)
	bh := ws.Vec32(g.Bh.Value)
	for step := 0; step < g.K; step++ {
		hw := ws.Arena32.GetUninit(n, g.H)
		tensor.MatMulPacked32Into(hw, h, wmsg)
		m := ws.Arena32.Get(n, g.H)
		for _, e := range edges {
			src := hw.Row(e.From)
			dst := m.Row(e.To)
			inv := 1 / inDeg.Data[e.To]
			for j, v := range src {
				dst[j] += v * inv
			}
		}
		zpre := ws.Arena32.GetUninit(n, g.H)
		tensor.MatMulPacked32Into(zpre, m, uz)
		tmp := ws.Arena32.GetUninit(n, g.H)
		tensor.MatMulPacked32Into(tmp, h, wz)
		for i, v := range tmp.Data {
			zpre.Data[i] += v
		}
		htpre := ws.Arena32.GetUninit(n, g.H)
		tensor.MatMulPacked32Into(htpre, m, uh)
		tensor.MatMulPacked32Into(tmp, h, wh)
		for i, v := range tmp.Data {
			htpre.Data[i] += v
		}
		for i := 0; i < n; i++ {
			zr, hr := zpre.Row(i), htpre.Row(i)
			for j := 0; j < g.H; j++ {
				zr[j] = sigmoid32(zr[j] + bz[j])
				hr[j] = tanh32(hr[j] + bh[j])
			}
		}
		hOut := ws.Arena32.GetUninit(n, g.H)
		for i := range hOut.Data {
			hOut.Data[i] = (1-zpre.Data[i])*h.Data[i] + zpre.Data[i]*htpre.Data[i]
		}
		ws.Arena32.Put(tmp)
		ws.Arena32.Put(htpre)
		ws.Arena32.Put(zpre)
		ws.Arena32.Put(m)
		ws.Arena32.Put(hw)
		h = hOut
	}
	return h
}

// ForwardSegmentsInfer32 is the f32 gated gather pooling.
func (ga *Gather) ForwardSegmentsInfer32(h, x *tensor.F32, segs []Segment, ws *nn.Workspace) *tensor.F32 {
	nl := 0
	for _, s := range segs {
		nl += s.NumLigand
	}
	hx := ws.Arena32.GetUninit(nl, ga.HIn+ga.XIn)
	hl := ws.Arena32.GetUninit(nl, ga.HIn)
	r := 0
	for _, s := range segs {
		for i := 0; i < s.NumLigand; i++ {
			copy(hx.Row(r)[:ga.HIn], h.Row(s.Start+i))
			copy(hx.Row(r)[ga.HIn:], x.Row(s.Start+i))
			copy(hl.Row(r), h.Row(s.Start+i))
			r++
		}
	}
	gate := ws.Arena32.GetUninit(nl, ga.Out)
	tensor.MatMulPacked32Into(gate, hx, ws.Packed32Transposed(ga.Wg.Value, ga.Out, ga.HIn+ga.XIn))
	th := ws.Arena32.GetUninit(nl, ga.Out)
	tensor.MatMulPacked32Into(th, hl, ws.Packed32Transposed(ga.Wo.Value, ga.Out, ga.HIn))
	bg := ws.Vec32(ga.Bg.Value)
	bo := ws.Vec32(ga.Bo.Value)
	out := ws.Arena32.Get(len(segs), ga.Out)
	r = 0
	for b, s := range segs {
		dst := out.Row(b)
		for i := 0; i < s.NumLigand; i++ {
			gr, tr := gate.Row(r), th.Row(r)
			for j := 0; j < ga.Out; j++ {
				gr[j] = sigmoid32(gr[j] + bg[j])
				tr[j] = tanh32(tr[j] + bo[j])
				dst[j] += gr[j] * tr[j]
			}
			r++
		}
	}
	ws.Arena32.Put(th)
	ws.Arena32.Put(gate)
	ws.Arena32.Put(hl)
	ws.Arena32.Put(hx)
	return out
}
