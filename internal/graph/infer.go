package graph

import (
	"deepfusion/internal/featurize"
	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// This file is the zero-allocation inference surface of the graph
// stages, mirroring the nn package's ForwardInfer contract: outputs
// come from the workspace arena, weight matrices are multiplied
// through their once-per-workspace panel packings, and nothing is
// cached for Backward. Outputs are byte-identical to the training
// Forward methods — same loops, same per-element term order.

// ForwardInfer is the inference-mode projection: x·Wᵀ + b into pooled
// buffers.
func (p *Project) ForwardInfer(x *tensor.Tensor, ws *nn.Workspace) *tensor.Tensor {
	out := ws.Arena.GetUninit(x.Dim(0), p.Out)
	tensor.MatMulPackedInto(out, x, ws.PackedTransposed(p.W.Value, p.Out, p.In))
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += p.B.Value.Data[j]
		}
	}
	return out
}

// ForwardInfer runs the K gated message-passing steps of Forward with
// workspace-pooled step tensors and packed weight products, caching
// nothing.
func (g *GGConv) ForwardInfer(h *tensor.Tensor, edges []featurize.Edge, ws *nn.Workspace) *tensor.Tensor {
	n := h.Dim(0)
	inDeg := ws.Arena.Get(n)
	for _, e := range edges {
		inDeg.Data[e.To]++
	}
	wmsg := ws.PackedTransposed(g.Wmsg.Value, g.H, g.H)
	uz := ws.PackedTransposed(g.Uz.Value, g.H, g.H)
	wz := ws.PackedTransposed(g.Wz.Value, g.H, g.H)
	uh := ws.PackedTransposed(g.Uh.Value, g.H, g.H)
	wh := ws.PackedTransposed(g.Wh.Value, g.H, g.H)
	for step := 0; step < g.K; step++ {
		hw := ws.Arena.GetUninit(n, g.H)
		tensor.MatMulPackedInto(hw, h, wmsg)
		m := ws.Arena.Get(n, g.H)
		for _, e := range edges {
			src := hw.Row(e.From)
			dst := m.Row(e.To)
			inv := 1 / inDeg.Data[e.To]
			for j, v := range src {
				dst[j] += v * inv
			}
		}
		zpre := ws.Arena.GetUninit(n, g.H)
		tensor.MatMulPackedInto(zpre, m, uz)
		tmp := ws.Arena.GetUninit(n, g.H)
		tensor.MatMulPackedInto(tmp, h, wz)
		zpre.AddInPlace(tmp)
		htpre := ws.Arena.GetUninit(n, g.H)
		tensor.MatMulPackedInto(htpre, m, uh)
		tensor.MatMulPackedInto(tmp, h, wh)
		htpre.AddInPlace(tmp)
		for i := 0; i < n; i++ {
			zr, hr := zpre.Row(i), htpre.Row(i)
			for j := 0; j < g.H; j++ {
				zr[j] = sigmoid(zr[j] + g.Bz.Value.Data[j])
				hr[j] = tanh(hr[j] + g.Bh.Value.Data[j])
			}
		}
		hOut := ws.Arena.GetUninit(n, g.H)
		for i := range hOut.Data {
			hOut.Data[i] = (1-zpre.Data[i])*h.Data[i] + zpre.Data[i]*htpre.Data[i]
		}
		ws.Arena.Put(tmp)
		ws.Arena.Put(htpre)
		ws.Arena.Put(zpre)
		ws.Arena.Put(m)
		ws.Arena.Put(hw)
		h = hOut
	}
	return h
}

// ForwardSegmentsInfer is the inference-mode gated gather pooling:
// identical math to ForwardSegments into pooled buffers, with no state
// retained for Backward.
func (ga *Gather) ForwardSegmentsInfer(h, x *tensor.Tensor, segs []Segment, ws *nn.Workspace) *tensor.Tensor {
	nl := 0
	for _, s := range segs {
		nl += s.NumLigand
	}
	hx := ws.Arena.GetUninit(nl, ga.HIn+ga.XIn)
	hl := ws.Arena.GetUninit(nl, ga.HIn)
	r := 0
	for _, s := range segs {
		for i := 0; i < s.NumLigand; i++ {
			copy(hx.Row(r)[:ga.HIn], h.Row(s.Start+i))
			copy(hx.Row(r)[ga.HIn:], x.Row(s.Start+i))
			copy(hl.Row(r), h.Row(s.Start+i))
			r++
		}
	}
	gate := ws.Arena.GetUninit(nl, ga.Out)
	tensor.MatMulPackedInto(gate, hx, ws.PackedTransposed(ga.Wg.Value, ga.Out, ga.HIn+ga.XIn))
	th := ws.Arena.GetUninit(nl, ga.Out)
	tensor.MatMulPackedInto(th, hl, ws.PackedTransposed(ga.Wo.Value, ga.Out, ga.HIn))
	out := ws.Arena.Get(len(segs), ga.Out)
	r = 0
	for b, s := range segs {
		dst := out.Row(b)
		for i := 0; i < s.NumLigand; i++ {
			gr, tr := gate.Row(r), th.Row(r)
			for j := 0; j < ga.Out; j++ {
				gr[j] = sigmoid(gr[j] + ga.Bg.Value.Data[j])
				tr[j] = tanh(tr[j] + ga.Bo.Value.Data[j])
				dst[j] += gr[j] * tr[j]
			}
			r++
		}
	}
	ws.Arena.Put(th)
	ws.Arena.Put(gate)
	ws.Arena.Put(hl)
	ws.Arena.Put(hx)
	return out
}
