package graph

import (
	"math/rand"
	"testing"

	"deepfusion/internal/featurize"
	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// TestGraphForwardInferMatchesForward pins the graph stages' inference
// variants byte-identical to their training forwards.
func TestGraphForwardInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ws := nn.NewWorkspace()
	n, hW := 9, 12

	nodes := tensor.New(n, featurize.NodeFeatures)
	for i := range nodes.Data {
		nodes.Data[i] = rng.NormFloat64()
	}
	var edges []featurize.Edge
	for i := 0; i < n; i++ {
		for e := 0; e < 3; e++ {
			edges = append(edges, featurize.Edge{From: rng.Intn(n), To: i, Dist: rng.Float64() * 4})
		}
	}

	check := func(name string, want, got *tensor.Tensor) {
		t.Helper()
		if !want.SameShape(got) {
			t.Fatalf("%s: shape %v vs %v", name, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%s elem %d: infer %v != forward %v", name, i, got.Data[i], want.Data[i])
			}
		}
	}

	proj := NewProject(rng, featurize.NodeFeatures, hW)
	h := proj.Forward(nodes)
	check("Project", h, proj.ForwardInfer(nodes, ws))

	gg := NewGGConv(rng, hW, 2)
	hg := gg.Forward(h, edges)
	check("GGConv", hg, gg.ForwardInfer(h, edges, ws))

	ga := NewGather(rng, hW, featurize.NodeFeatures, hW)
	segs := []Segment{{Start: 0, NumLigand: 4}, {Start: 4, NumLigand: 3}}
	want := ga.ForwardSegments(hg, nodes, segs)
	// ForwardSegments activates its gate/tanh caches in place, so
	// recompute hg fresh for the inference call.
	hgi := gg.ForwardInfer(h, edges, ws)
	check("Gather", want, ga.ForwardSegmentsInfer(hgi, nodes, segs, ws))

	// Warm steady state allocates nothing.
	pass := func() {
		ws.Reset()
		hi := proj.ForwardInfer(nodes, ws)
		hi = gg.ForwardInfer(hi, edges, ws)
		ga.ForwardSegmentsInfer(hi, nodes, segs, ws)
	}
	for i := 0; i < 3; i++ {
		pass()
	}
	if avg := testing.AllocsPerRun(50, pass); avg != 0 {
		t.Fatalf("warm graph inference pass allocates %.1f times per run, want 0", avg)
	}
}
