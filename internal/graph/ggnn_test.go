package graph

import (
	"math"
	"math/rand"
	"testing"

	"deepfusion/internal/featurize"
	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// ring returns a bidirectional ring graph over n nodes.
func ring(n int) []featurize.Edge {
	var es []featurize.Edge
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		es = append(es, featurize.Edge{From: i, To: j}, featurize.Edge{From: j, To: i})
	}
	return es
}

func TestGGConvShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGGConv(rng, 6, 3)
	h := tensor.New(5, 6)
	h.RandNormal(rng, 1)
	out := g.Forward(h, ring(5))
	if out.Dim(0) != 5 || out.Dim(1) != 6 {
		t.Fatalf("shape %v", out.Shape)
	}
	if len(g.Params()) != 7 {
		t.Fatalf("params = %d", len(g.Params()))
	}
}

func TestGGConvIsolatedNodesStable(t *testing.T) {
	// With no edges, messages are zero and the update becomes a gated
	// self-map; output must stay finite.
	rng := rand.New(rand.NewSource(2))
	g := NewGGConv(rng, 4, 2)
	h := tensor.New(3, 4)
	h.RandNormal(rng, 1)
	out := g.Forward(h, nil)
	for _, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite output for isolated nodes")
		}
	}
}

// gradient check: loss = sum(Forward(h)).
func TestGGConvInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGGConv(rng, 4, 2)
	edges := ring(4)
	h := tensor.New(4, 4)
	h.RandNormal(rng, 1)

	out := g.Forward(h, edges)
	ones := tensor.New(out.Shape...)
	ones.Fill(1)
	nn.ZeroGrads(g.Params())
	dh := g.Backward(ones)

	const eps = 1e-6
	for i := range h.Data {
		orig := h.Data[i]
		h.Data[i] = orig + eps
		up := g.Forward(h, edges).Sum()
		h.Data[i] = orig - eps
		down := g.Forward(h, edges).Sum()
		h.Data[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(dh.Data[i]-want) > 1e-5 {
			t.Fatalf("dh[%d] = %v, numeric %v", i, dh.Data[i], want)
		}
	}
}

func TestGGConvParamGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewGGConv(rng, 3, 2)
	edges := ring(4)
	h := tensor.New(4, 3)
	h.RandNormal(rng, 1)

	out := g.Forward(h, edges)
	ones := tensor.New(out.Shape...)
	ones.Fill(1)
	nn.ZeroGrads(g.Params())
	g.Backward(ones)

	const eps = 1e-6
	for pi, p := range g.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			up := g.Forward(h, edges).Sum()
			p.Value.Data[i] = orig - eps
			down := g.Forward(h, edges).Sum()
			p.Value.Data[i] = orig
			want := (up - down) / (2 * eps)
			if math.Abs(p.Grad.Data[i]-want) > 1e-5 {
				t.Fatalf("param %d grad[%d] = %v, numeric %v", pi, i, p.Grad.Data[i], want)
			}
		}
	}
}

func TestGatherShapesAndLigandOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ga := NewGather(rng, 4, 3, 6)
	h := tensor.New(5, 4)
	x := tensor.New(5, 3)
	h.RandNormal(rng, 1)
	x.RandNormal(rng, 1)
	out := ga.Forward(h, x, 2)
	if out.Dim(0) != 1 || out.Dim(1) != 6 {
		t.Fatalf("shape %v", out.Shape)
	}
	// Changing a protein node (index >= numLigand) must not change out.
	h.Set(99, 4, 0)
	out2 := ga.Forward(h, x, 2)
	for i := range out.Data {
		if out.Data[i] != out2.Data[i] {
			t.Fatal("protein node affected gather output")
		}
	}
}

func TestGatherInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ga := NewGather(rng, 3, 2, 4)
	h := tensor.New(4, 3)
	x := tensor.New(4, 2)
	h.RandNormal(rng, 1)
	x.RandNormal(rng, 1)

	out := ga.Forward(h, x, 3)
	ones := tensor.New(out.Shape...)
	ones.Fill(1)
	nn.ZeroGrads(ga.Params())
	dh := ga.Backward(ones)

	const eps = 1e-6
	for i := range h.Data {
		orig := h.Data[i]
		h.Data[i] = orig + eps
		up := ga.Forward(h, x, 3).Sum()
		h.Data[i] = orig - eps
		down := ga.Forward(h, x, 3).Sum()
		h.Data[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(dh.Data[i]-want) > 1e-5 {
			t.Fatalf("dh[%d] = %v, numeric %v", i, dh.Data[i], want)
		}
	}
	// Protein rows must receive zero gradient.
	for j := 0; j < 3; j++ {
		if dh.At(3, j) != 0 {
			t.Fatal("protein node received gather gradient")
		}
	}
}

func TestGatherParamGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ga := NewGather(rng, 3, 2, 4)
	h := tensor.New(3, 3)
	x := tensor.New(3, 2)
	h.RandNormal(rng, 1)
	x.RandNormal(rng, 1)

	out := ga.Forward(h, x, 3)
	ones := tensor.New(out.Shape...)
	ones.Fill(1)
	nn.ZeroGrads(ga.Params())
	ga.Backward(ones)

	const eps = 1e-6
	for pi, p := range ga.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			up := ga.Forward(h, x, 3).Sum()
			p.Value.Data[i] = orig - eps
			down := ga.Forward(h, x, 3).Sum()
			p.Value.Data[i] = orig
			want := (up - down) / (2 * eps)
			if math.Abs(p.Grad.Data[i]-want) > 1e-5 {
				t.Fatalf("param %d grad[%d] = %v, numeric %v", pi, i, p.Grad.Data[i], want)
			}
		}
	}
}

func TestProjectGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewProject(rng, 3, 5)
	x := tensor.New(4, 3)
	x.RandNormal(rng, 1)
	out := p.Forward(x)
	if out.Dim(1) != 5 {
		t.Fatalf("shape %v", out.Shape)
	}
	ones := tensor.New(out.Shape...)
	ones.Fill(1)
	nn.ZeroGrads(p.Params())
	dx := p.Backward(ones)
	const eps = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := p.Forward(x).Sum()
		x.Data[i] = orig - eps
		down := p.Forward(x).Sum()
		x.Data[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(dx.Data[i]-want) > 1e-6 {
			t.Fatalf("dx[%d] = %v, numeric %v", i, dx.Data[i], want)
		}
	}
}

func TestSigmoidTanhNumerics(t *testing.T) {
	if v := sigmoid(0); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", v)
	}
	if v := sigmoid(1000); v != 1 {
		t.Fatalf("sigmoid overflow: %v", v)
	}
	if v := sigmoid(-1000); v != 0 {
		t.Fatalf("sigmoid underflow: %v", v)
	}
	if v := tanh(0); v != 0 {
		t.Fatalf("tanh(0) = %v", v)
	}
	if v := tanh(100); v != 1 {
		t.Fatalf("tanh saturation: %v", v)
	}
	if v := tanh(0.5); math.Abs(v-math.Tanh(0.5)) > 1e-12 {
		t.Fatalf("tanh(0.5) = %v", v)
	}
}

// End-to-end: a tiny GGNN + gather can fit a simple graph-level target.
func TestGGNNLearnsGraphTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const h = 8
	proj := NewProject(rng, 2, h)
	conv := NewGGConv(rng, h, 2)
	gather := NewGather(rng, h, 2, h)
	head := nn.NewDense(rng, h, 1)
	var params []*nn.Param
	params = append(params, proj.Params()...)
	params = append(params, conv.Params()...)
	params = append(params, gather.Params()...)
	params = append(params, head.Params()...)
	opt := nn.NewAdam(params, 0.01)

	// Dataset: ring graphs whose target is the mean of feature 0.
	type sample struct {
		x     *tensor.Tensor
		edges []featurize.Edge
		y     float64
	}
	var data []sample
	for i := 0; i < 24; i++ {
		n := 3 + rng.Intn(4)
		x := tensor.New(n, 2)
		x.RandNormal(rng, 1)
		s := 0.0
		for j := 0; j < n; j++ {
			s += x.At(j, 0)
		}
		data = append(data, sample{x: x, edges: ring(n), y: s / float64(n)})
	}
	var loss float64
	for epoch := 0; epoch < 150; epoch++ {
		loss = 0
		for _, s := range data {
			hN := proj.Forward(s.x)
			hN = conv.Forward(hN, s.edges)
			emb := gather.Forward(hN, s.x, s.x.Dim(0))
			pred := head.Forward(emb, true)
			target := tensor.FromSlice([]float64{s.y}, 1, 1)
			l, dpred := nn.MSELoss(pred, target)
			loss += l
			demb := head.Backward(dpred)
			dh := gather.Backward(demb)
			dh = conv.Backward(dh)
			proj.Backward(dh)
		}
		opt.Step()
	}
	loss /= float64(len(data))
	if loss > 0.05 {
		t.Fatalf("GGNN failed to fit: loss %v", loss)
	}
}

func TestGGConvDeterministicForward(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	g := NewGGConv(rng, 5, 2)
	h := tensor.New(4, 5)
	h.RandNormal(rng, 1)
	edges := ring(4)
	a := g.Forward(h, edges)
	b := g.Forward(h, edges)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("forward not deterministic")
		}
	}
}

func TestGGConvMessageAveraging(t *testing.T) {
	// A node with two identical in-neighbors must receive the same
	// message as a node with one such neighbor (mean, not sum).
	rng := rand.New(rand.NewSource(41))
	g := NewGGConv(rng, 3, 1)
	h := tensor.New(4, 3)
	// nodes 0 and 1 identical features; node 2 has both as neighbors,
	// node 3 has only node 0.
	for j := 0; j < 3; j++ {
		h.Set(1.5, 0, j)
		h.Set(1.5, 1, j)
	}
	edges := []featurize.Edge{
		{From: 0, To: 2}, {From: 1, To: 2},
		{From: 0, To: 3},
	}
	out := g.Forward(h, edges)
	for j := 0; j < 3; j++ {
		if math.Abs(out.At(2, j)-out.At(3, j)) > 1e-12 {
			t.Fatal("in-degree normalization broken: sum instead of mean?")
		}
	}
}

func TestGatherZeroLigandNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ga := NewGather(rng, 3, 2, 4)
	h := tensor.New(2, 3)
	x := tensor.New(2, 2)
	out := ga.Forward(h, x, 0)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("empty gather must be zero")
		}
	}
}
