// Package graph implements the spatial graph convolution building
// blocks of the SG-CNN: a gated graph convolution stage (in the style
// of Gated Graph Sequence Neural Networks / PotentialNet) and the
// gated gather pooling that reduces ligand-node embeddings to a fixed
// graph feature vector. Both implement explicit reverse-mode
// backpropagation compatible with the nn package's Param/Optimizer
// machinery.
package graph

import (
	"math"
	"math/rand"

	"deepfusion/internal/featurize"
	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// GGConv is one gated graph convolution stage of width H run for K
// message-passing steps over a fixed edge type (covalent or
// non-covalent). The update is a coupled-gate GRU:
//
//	m  = A_norm (h Wmsg)
//	z  = sigmoid(m Uz + h Wz + bz)
//	ht = tanh   (m Uh + h Wh + bh)
//	h' = (1-z) .* h + z .* ht
//
// where A_norm averages incoming messages.
type GGConv struct {
	H, K int

	Wmsg, Uz, Wz, Uh, Wh *nn.Param // [H, H]
	Bz, Bh               *nn.Param // [H]

	steps []ggStep
	edges []featurize.Edge
	inDeg []float64
}

type ggStep struct {
	hIn, hw, m, z, ht *tensor.Tensor
}

// NewGGConv constructs a gated graph convolution of width h with k
// message-passing steps.
func NewGGConv(rng *rand.Rand, h, k int) *GGConv {
	g := &GGConv{
		H: h, K: k,
		Wmsg: nn.NewParam("gg.wmsg", h, h),
		Uz:   nn.NewParam("gg.uz", h, h),
		Wz:   nn.NewParam("gg.wz", h, h),
		Uh:   nn.NewParam("gg.uh", h, h),
		Wh:   nn.NewParam("gg.wh", h, h),
		Bz:   nn.NewParam("gg.bz", h),
		Bh:   nn.NewParam("gg.bh", h),
	}
	for _, p := range []*nn.Param{g.Wmsg, g.Uz, g.Wz, g.Uh, g.Wh} {
		nn.GlorotInit(rng, p, h, h)
	}
	return g
}

// Params returns the trainable parameters.
func (g *GGConv) Params() []*nn.Param {
	return []*nn.Param{g.Wmsg, g.Uz, g.Wz, g.Uh, g.Wh, g.Bz, g.Bh}
}

// Forward runs K gated message-passing steps of h ([N, H]) over edges.
func (g *GGConv) Forward(h *tensor.Tensor, edges []featurize.Edge) *tensor.Tensor {
	n := h.Dim(0)
	g.edges = edges
	g.inDeg = make([]float64, n)
	for _, e := range edges {
		g.inDeg[e.To]++
	}
	g.steps = g.steps[:0]
	for step := 0; step < g.K; step++ {
		hw := tensor.MatMulTransB(h, g.Wmsg.Value) // [N, H]
		m := tensor.New(n, g.H)
		for _, e := range edges {
			src := hw.Row(e.From)
			dst := m.Row(e.To)
			inv := 1 / g.inDeg[e.To]
			for j, v := range src {
				dst[j] += v * inv
			}
		}
		zpre := tensor.MatMulTransB(m, g.Uz.Value)
		zpre.AddInPlace(tensor.MatMulTransB(h, g.Wz.Value))
		htpre := tensor.MatMulTransB(m, g.Uh.Value)
		htpre.AddInPlace(tensor.MatMulTransB(h, g.Wh.Value))
		for i := 0; i < n; i++ {
			zr, hr := zpre.Row(i), htpre.Row(i)
			for j := 0; j < g.H; j++ {
				zr[j] = sigmoid(zr[j] + g.Bz.Value.Data[j])
				hr[j] = tanh(hr[j] + g.Bh.Value.Data[j])
			}
		}
		z, ht := zpre, htpre // now activated in place
		hOut := tensor.New(n, g.H)
		for i := range hOut.Data {
			hOut.Data[i] = (1-z.Data[i])*h.Data[i] + z.Data[i]*ht.Data[i]
		}
		g.steps = append(g.steps, ggStep{hIn: h, hw: hw, m: m, z: z, ht: ht})
		h = hOut
	}
	return h
}

// Backward propagates grad ([N, H], gradient w.r.t. the output of
// Forward) through all K steps, accumulating parameter gradients, and
// returns the gradient w.r.t. the input node features.
func (g *GGConv) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for step := len(g.steps) - 1; step >= 0; step-- {
		st := g.steps[step]
		n := st.hIn.Dim(0)
		dz := tensor.New(n, g.H)
		dht := tensor.New(n, g.H)
		dh := tensor.New(n, g.H) // grad into h (input of this step)
		for i := range grad.Data {
			dz.Data[i] = grad.Data[i] * (st.ht.Data[i] - st.hIn.Data[i])
			dht.Data[i] = grad.Data[i] * st.z.Data[i]
			dh.Data[i] = grad.Data[i] * (1 - st.z.Data[i])
		}
		// Through the activations.
		for i := range dz.Data {
			z := st.z.Data[i]
			dz.Data[i] *= z * (1 - z)
			ht := st.ht.Data[i]
			dht.Data[i] *= 1 - ht*ht
		}
		// Bias gradients.
		for i := 0; i < n; i++ {
			zr, hr := dz.Row(i), dht.Row(i)
			for j := 0; j < g.H; j++ {
				g.Bz.Grad.Data[j] += zr[j]
				g.Bh.Grad.Data[j] += hr[j]
			}
		}
		// zpre = m Uz^T + h Wz^T ; htpre = m Uh^T + h Wh^T
		g.Uz.Grad.AddInPlace(tensor.MatMulTransA(dz, st.m))
		g.Wz.Grad.AddInPlace(tensor.MatMulTransA(dz, st.hIn))
		g.Uh.Grad.AddInPlace(tensor.MatMulTransA(dht, st.m))
		g.Wh.Grad.AddInPlace(tensor.MatMulTransA(dht, st.hIn))
		dm := tensor.MatMul(dz, g.Uz.Value)
		dm.AddInPlace(tensor.MatMul(dht, g.Uh.Value))
		dh.AddInPlace(tensor.MatMul(dz, g.Wz.Value))
		dh.AddInPlace(tensor.MatMul(dht, g.Wh.Value))
		// m = A_norm (h Wmsg^T): scatter transpose.
		dhw := tensor.New(n, g.H)
		for _, e := range g.edges {
			src := dm.Row(e.To)
			dst := dhw.Row(e.From)
			inv := 1 / g.inDeg[e.To]
			for j, v := range src {
				dst[j] += v * inv
			}
		}
		g.Wmsg.Grad.AddInPlace(tensor.MatMulTransA(dhw, st.hIn))
		dh.AddInPlace(tensor.MatMul(dhw, g.Wmsg.Value))
		grad = dh
	}
	return grad
}

// Segment addresses one graph inside a disjoint-union node batch: the
// row where its nodes start and how many of those rows are ligand
// atoms (ligand nodes lead each graph's block, as in featurize.Graph).
type Segment struct {
	Start     int
	NumLigand int
}

// Gather is the PotentialNet-style gated pooling over ligand nodes:
//
//	gate_i = sigmoid([h_i, x_i] Wg + bg)
//	out    = sum_{i < numLigand} gate_i .* tanh(h_i Wo + bo)
//
// producing a fixed-width graph embedding from variable-size graphs.
// ForwardSegments pools a whole disjoint-union batch in one pass,
// returning one embedding row per segment; Forward is its B=1 case.
type Gather struct {
	HIn, XIn, Out int

	Wg *nn.Param // [Out, HIn+XIn]
	Bg *nn.Param // [Out]
	Wo *nn.Param // [Out, HIn]
	Bo *nn.Param // [Out]

	lastH, lastX       *tensor.Tensor
	lastGate, lastTanh *tensor.Tensor
	lastSegs           []Segment
}

// NewGather constructs a gather stage reducing [N, hIn] node embeddings
// (with [N, xIn] raw features) to a [1, out] graph vector.
func NewGather(rng *rand.Rand, hIn, xIn, out int) *Gather {
	ga := &Gather{
		HIn: hIn, XIn: xIn, Out: out,
		Wg: nn.NewParam("gather.wg", out, hIn+xIn),
		Bg: nn.NewParam("gather.bg", out),
		Wo: nn.NewParam("gather.wo", out, hIn),
		Bo: nn.NewParam("gather.bo", out),
	}
	nn.GlorotInit(rng, ga.Wg, hIn+xIn, out)
	nn.GlorotInit(rng, ga.Wo, hIn, out)
	return ga
}

// Params returns the trainable parameters.
func (ga *Gather) Params() []*nn.Param {
	return []*nn.Param{ga.Wg, ga.Bg, ga.Wo, ga.Bo}
}

// Forward pools the first numLigand rows of h (raw features x aligned
// row-wise) into a [1, Out] graph embedding.
func (ga *Gather) Forward(h, x *tensor.Tensor, numLigand int) *tensor.Tensor {
	return ga.ForwardSegments(h, x, []Segment{{Start: 0, NumLigand: numLigand}})
}

// ForwardSegments pools each segment's ligand rows of the
// disjoint-union batch h (raw features x aligned row-wise) into one
// embedding row per segment, returning [len(segs), Out]. Per-row math
// is identical to Forward, so batched and single-graph pooling agree
// bitwise.
func (ga *Gather) ForwardSegments(h, x *tensor.Tensor, segs []Segment) *tensor.Tensor {
	ga.lastH, ga.lastX = h, x
	ga.lastSegs = append(ga.lastSegs[:0], segs...)
	nl := 0
	for _, s := range segs {
		nl += s.NumLigand
	}
	hx := tensor.New(nl, ga.HIn+ga.XIn)
	hl := tensor.New(nl, ga.HIn)
	r := 0
	for _, s := range segs {
		for i := 0; i < s.NumLigand; i++ {
			copy(hx.Row(r)[:ga.HIn], h.Row(s.Start+i))
			copy(hx.Row(r)[ga.HIn:], x.Row(s.Start+i))
			copy(hl.Row(r), h.Row(s.Start+i))
			r++
		}
	}
	gate := tensor.MatMulTransB(hx, ga.Wg.Value)
	th := tensor.MatMulTransB(hl, ga.Wo.Value)
	out := tensor.New(len(segs), ga.Out)
	r = 0
	for b, s := range segs {
		dst := out.Row(b)
		for i := 0; i < s.NumLigand; i++ {
			gr, tr := gate.Row(r), th.Row(r)
			for j := 0; j < ga.Out; j++ {
				gr[j] = sigmoid(gr[j] + ga.Bg.Value.Data[j])
				tr[j] = tanh(tr[j] + ga.Bo.Value.Data[j])
				dst[j] += gr[j] * tr[j]
			}
			r++
		}
	}
	ga.lastGate, ga.lastTanh = gate, th
	return out
}

// Backward propagates grad ([B, Out], one row per segment of the last
// ForwardSegments call) to the node embeddings, returning d(h) of
// shape [N, HIn] (zero rows for protein nodes).
func (ga *Gather) Backward(grad *tensor.Tensor) *tensor.Tensor {
	nl := 0
	for _, s := range ga.lastSegs {
		nl += s.NumLigand
	}
	dgate := tensor.New(nl, ga.Out)
	dtanh := tensor.New(nl, ga.Out)
	r := 0
	for b, s := range ga.lastSegs {
		gv := grad.Row(b)
		for i := 0; i < s.NumLigand; i++ {
			gr, tr := ga.lastGate.Row(r), ga.lastTanh.Row(r)
			dgr, dtr := dgate.Row(r), dtanh.Row(r)
			for j := 0; j < ga.Out; j++ {
				dgr[j] = gv[j] * tr[j] * gr[j] * (1 - gr[j])
				dtr[j] = gv[j] * gr[j] * (1 - tr[j]*tr[j])
				ga.Bg.Grad.Data[j] += dgr[j]
				ga.Bo.Grad.Data[j] += dtr[j]
			}
			r++
		}
	}
	hx := tensor.New(nl, ga.HIn+ga.XIn)
	hl := tensor.New(nl, ga.HIn)
	r = 0
	for _, s := range ga.lastSegs {
		for i := 0; i < s.NumLigand; i++ {
			copy(hx.Row(r)[:ga.HIn], ga.lastH.Row(s.Start+i))
			copy(hx.Row(r)[ga.HIn:], ga.lastX.Row(s.Start+i))
			copy(hl.Row(r), ga.lastH.Row(s.Start+i))
			r++
		}
	}
	ga.Wg.Grad.AddInPlace(tensor.MatMulTransA(dgate, hx))
	ga.Wo.Grad.AddInPlace(tensor.MatMulTransA(dtanh, hl))
	dhx := tensor.MatMul(dgate, ga.Wg.Value) // [nl, HIn+XIn]
	dhl := tensor.MatMul(dtanh, ga.Wo.Value) // [nl, HIn]
	dh := tensor.New(ga.lastH.Shape...)
	r = 0
	for _, s := range ga.lastSegs {
		for i := 0; i < s.NumLigand; i++ {
			dst := dh.Row(s.Start + i)
			a, b := dhx.Row(r), dhl.Row(r)
			for j := 0; j < ga.HIn; j++ {
				dst[j] = a[j] + b[j]
			}
			r++
		}
	}
	return dh
}

// Project is a per-node linear projection [N, In] -> [N, Out] used to
// lift raw node features into the hidden width and to bridge stages of
// different widths.
type Project struct {
	In, Out int
	W       *nn.Param
	B       *nn.Param

	lastX *tensor.Tensor
}

// NewProject constructs the projection.
func NewProject(rng *rand.Rand, in, out int) *Project {
	p := &Project{In: in, Out: out, W: nn.NewParam("proj.w", out, in), B: nn.NewParam("proj.b", out)}
	nn.GlorotInit(rng, p.W, in, out)
	return p
}

// Params returns the trainable parameters.
func (p *Project) Params() []*nn.Param { return []*nn.Param{p.W, p.B} }

// Forward applies the projection.
func (p *Project) Forward(x *tensor.Tensor) *tensor.Tensor {
	p.lastX = x
	out := tensor.MatMulTransB(x, p.W.Value)
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += p.B.Value.Data[j]
		}
	}
	return out
}

// Backward accumulates parameter gradients and returns d(x).
func (p *Project) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.W.Grad.AddInPlace(tensor.MatMulTransA(grad, p.lastX))
	n := grad.Dim(0)
	for i := 0; i < n; i++ {
		row := grad.Row(i)
		for j, v := range row {
			p.B.Grad.Data[j] += v
		}
	}
	return tensor.MatMul(grad, p.W.Value)
}

func sigmoid(v float64) float64 {
	if v >= 0 {
		e := exp(-v)
		return 1 / (1 + e)
	}
	e := exp(v)
	return e / (1 + e)
}

func tanh(v float64) float64 {
	if v > 20 {
		return 1
	}
	if v < -20 {
		return -1
	}
	e2 := exp(2 * v)
	return (e2 - 1) / (e2 + 1)
}

func exp(v float64) float64 { return math.Exp(v) }
