package assay

// Confirmatory screening (paper Section 5.1): primary hits were
// re-screened with a second, orthogonal assay before compounds were
// declared actives — FRET then SDS-PAGE protein-cleavage for Mpro,
// pseudo-typed virus then biolayer interferometry (BLI) for spike.

import (
	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// Secondary returns the orthogonal confirmation assay for the target:
// SDS-PAGE for the protease sites, BLI for the spike sites. It reads
// the same underlying binding truth through an independent noise and
// efficacy stream, so confirmation is informative rather than a
// re-read of the primary value.
func Secondary(t *target.Pocket) *Assay {
	switch t {
	case target.Protease1, target.Protease2:
		return &Assay{Kind: SDSPage, Target: t, ConcentrationUM: 100, EfficacyFailRate: 0.45, NoisePct: 5, kindQualified: true}
	case target.Spike1, target.Spike2:
		return &Assay{Kind: BLI, Target: t, ConcentrationUM: 10, EfficacyFailRate: 0.45, NoisePct: 5, kindQualified: true}
	default:
		return &Assay{Kind: SDSPage, Target: t, ConcentrationUM: 100, EfficacyFailRate: 0.45, NoisePct: 5, kindQualified: true}
	}
}

// Confirmation is the outcome of a two-stage screen.
type Confirmation struct {
	PrimaryHits []int // indices of compounds above threshold in the primary
	Confirmed   []int // subset also above threshold in the secondary
}

// ConfirmationRate returns confirmed/primary (0 when no primary hits).
func (c Confirmation) ConfirmationRate() float64 {
	if len(c.PrimaryHits) == 0 {
		return 0
	}
	return float64(len(c.Confirmed)) / float64(len(c.PrimaryHits))
}

// Screen runs the paper's two-stage protocol over the compounds:
// everything goes through the primary assay; compounds at or above
// thresholdPct go on to the secondary assay, and only those that
// repeat are confirmed.
func Screen(t *target.Pocket, mols []*chem.Mol, thresholdPct float64) Confirmation {
	primary := ForTarget(t)
	secondary := Secondary(t)
	var c Confirmation
	for i, m := range mols {
		if primary.Inhibition(m) < thresholdPct {
			continue
		}
		c.PrimaryHits = append(c.PrimaryHits, i)
		if secondary.Inhibition(m) >= thresholdPct {
			c.Confirmed = append(c.Confirmed, i)
		}
	}
	return c
}
