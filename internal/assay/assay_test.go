package assay

import (
	"testing"

	"deepfusion/internal/chem"
	"deepfusion/internal/libgen"
	"deepfusion/internal/target"
)

func prepMol(t *testing.T, s string, seed int64) *chem.Mol {
	t.Helper()
	m, err := chem.ParseSMILES(s)
	if err != nil {
		t.Fatal(err)
	}
	m.Name = s
	out, err := chem.Prepare(m, seed)
	if err != nil {
		t.Fatal(err)
	}
	out.Name = s
	return out
}

func TestAssayKindsAndConcentrations(t *testing.T) {
	// Paper: Mpro assays read at 100 uM, spike at 10 uM.
	for _, tgt := range []*target.Pocket{target.Protease1, target.Protease2} {
		a := ForTarget(tgt)
		if a.ConcentrationUM != 100 {
			t.Fatalf("%s assay at %v uM, want 100", tgt.Name, a.ConcentrationUM)
		}
		if a.Kind != FRET {
			t.Fatalf("%s assay kind %s", tgt.Name, a.Kind)
		}
	}
	for _, tgt := range []*target.Pocket{target.Spike1, target.Spike2} {
		a := ForTarget(tgt)
		if a.ConcentrationUM != 10 {
			t.Fatalf("%s assay at %v uM, want 10", tgt.Name, a.ConcentrationUM)
		}
		if a.Kind != PseudoVirus {
			t.Fatalf("%s assay kind %s", tgt.Name, a.Kind)
		}
	}
}

func TestInhibitionBounds(t *testing.T) {
	a := ForTarget(target.Protease1)
	for i := 0; i < 40; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		inh := a.Inhibition(m)
		if inh < 0 || inh > 100 {
			t.Fatalf("inhibition %v outside [0,100]", inh)
		}
	}
}

func TestInhibitionDeterministic(t *testing.T) {
	a := ForTarget(target.Spike1)
	m := prepMol(t, "c1ccccc1CCN", 3)
	if a.Inhibition(m) != a.Inhibition(m) {
		t.Fatal("assay not deterministic")
	}
}

func TestMostCompoundsInactive(t *testing.T) {
	// The paper's experimental screens were dominated by non-binders.
	a := ForTarget(target.Protease1)
	inactive := 0
	total := 0
	for i := 0; i < 120; i++ {
		m, err := libgen.EMolecules.Mol(i)
		if err != nil {
			continue
		}
		total++
		if a.Inhibition(m) <= 1 {
			inactive++
		}
	}
	if total == 0 {
		t.Fatal("no compounds prepared")
	}
	if frac := float64(inactive) / float64(total); frac < 0.3 {
		t.Fatalf("only %v of compounds inactive; screens should be mostly negative", frac)
	}
}

func TestSomeCompoundsActive(t *testing.T) {
	a := ForTarget(target.Protease1)
	active := 0
	for i := 0; i < 200; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		if a.Inhibition(m) > 33 {
			active++
		}
	}
	if active == 0 {
		t.Fatal("no compound exceeds 33% inhibition in 200; hit analysis impossible")
	}
}

func TestConcentrationMatters(t *testing.T) {
	// The same affinity produces higher occupancy at 100 uM than at
	// 10 uM, so the Mpro assay is more permissive (paper Section 5.3).
	m := prepMol(t, "NCCc1ccc(O)cc1", 5)
	high := &Assay{Kind: FRET, Target: target.Protease1, ConcentrationUM: 100, EfficacyFailRate: 0, NoisePct: 0}
	low := &Assay{Kind: FRET, Target: target.Protease1, ConcentrationUM: 10, EfficacyFailRate: 0, NoisePct: 0}
	if high.Inhibition(m) <= low.Inhibition(m) {
		t.Fatalf("100 uM (%v%%) should exceed 10 uM (%v%%)", high.Inhibition(m), low.Inhibition(m))
	}
}

func TestStrongBinderShowsInhibitionWithoutNoise(t *testing.T) {
	clean := &Assay{Kind: FRET, Target: target.Protease1, ConcentrationUM: 100, EfficacyFailRate: 0, NoisePct: 0}
	found := false
	for i := 0; i < 60; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		if clean.Inhibition(m) > 50 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no strong binder reaches 50% in a clean assay")
	}
}
