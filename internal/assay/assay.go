// Package assay simulates the experimental validation stage of the
// pipeline: the FRET / SDS-PAGE activity assays used for Mpro
// candidates (read at 100 uM) and the pseudo-typed virus / biolayer
// interferometry assays used for spike candidates (read at 10 uM).
//
// Observed inhibition is a saturating dose-response of the planted
// true affinity, multiplied by a per-compound efficacy factor (many
// computational binders fail in cells for reasons no docking score
// sees: solubility, aggregation, membrane permeability) plus assay
// noise. This reproduces the paper's retrospective picture: most
// tested compounds show <= 1% inhibition, correlations against any
// scoring method are low but positive for some targets, and the
// higher Mpro concentration lets weaker binders show activity.
package assay

import (
	"hash/fnv"
	"math"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// Kind is the experimental technique.
type Kind string

// Assay kinds from the paper.
const (
	FRET        Kind = "FRET"
	SDSPage     Kind = "SDS-PAGE"
	PseudoVirus Kind = "pseudo-typed virus"
	BLI         Kind = "biolayer interferometry"
)

// Assay is one experimental screen against a target.
type Assay struct {
	Kind             Kind
	Target           *target.Pocket
	ConcentrationUM  float64 // compound concentration in micro-molar
	EfficacyFailRate float64 // fraction of compounds inert in cells
	NoisePct         float64 // additive readout noise (percent)

	// kindQualified keys the noise/efficacy hash streams by assay Kind
	// as well as target. Primary assays keep the historical
	// target-only namespace (so recorded experiment outputs stay
	// byte-reproducible); secondary confirmation assays set this so
	// they read the binding truth through an independent error stream.
	kindQualified bool
}

// tag returns the hash namespace for one of this assay's stochastic
// streams.
func (a *Assay) tag(stream string) string {
	if a.kindQualified {
		return a.Target.Name + "/" + string(a.Kind) + "/" + stream
	}
	return a.Target.Name + "/" + stream
}

// ForTarget returns the paper's assay for the given screening target:
// FRET at 100 uM for the protease sites, pseudo-typed virus at 10 uM
// for the spike sites.
func ForTarget(t *target.Pocket) *Assay {
	switch t {
	case target.Protease1, target.Protease2:
		return &Assay{Kind: FRET, Target: t, ConcentrationUM: 100, EfficacyFailRate: 0.55, NoisePct: 3}
	case target.Spike1, target.Spike2:
		return &Assay{Kind: PseudoVirus, Target: t, ConcentrationUM: 10, EfficacyFailRate: 0.55, NoisePct: 3}
	default:
		return &Assay{Kind: FRET, Target: t, ConcentrationUM: 100, EfficacyFailRate: 0.55, NoisePct: 3}
	}
}

// Inhibition returns the observed percent inhibition (0-100) of the
// compound at the assay concentration. The result is deterministic
// per (assay target, compound).
func (a *Assay) Inhibition(mol *chem.Mol) float64 {
	posed := mol.Clone()
	a.Target.PlaceLigand(posed)
	pk := a.Target.TrueAffinity(posed)
	kdMolar := math.Pow(10, -pk)
	concMolar := a.ConcentrationUM * 1e-6
	bound := concMolar / (concMolar + kdMolar) // receptor occupancy

	key := molID(mol)
	// Cell/biochemical efficacy: a hash coin decides whether this
	// compound's binding translates into measurable inhibition at all,
	// and a second hash scales partial efficacy.
	if hashUniform(a.tag("fail"), key) < a.EfficacyFailRate {
		bound *= 0.005
	} else {
		bound *= 0.4 + 0.6*hashUniform(a.tag("eff"), key)
	}
	inh := 100 * bound
	inh += a.NoisePct * hashNormal(a.tag("noise"), key)
	if inh < 0 {
		return 0
	}
	if inh > 100 {
		return 100
	}
	return inh
}

func molID(m *chem.Mol) string {
	if m.Name != "" {
		return m.Name
	}
	if m.SMILES != "" {
		return m.SMILES
	}
	return chem.WriteSMILES(m)
}

func hashBits(tag, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tag))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

func hashUniform(tag, key string) float64 {
	seed := hashBits(tag, key)
	seed = seed*6364136223846793005 + 1442695040888963407
	return float64(seed>>11) / float64(1<<53)
}

func hashNormal(tag, key string) float64 {
	seed := hashBits(tag, key)
	s := 0.0
	for i := 0; i < 12; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		s += float64(seed>>11) / float64(1<<53)
	}
	return s - 6
}
