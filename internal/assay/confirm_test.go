package assay

import (
	"testing"
	"testing/quick"

	"deepfusion/internal/chem"
	"deepfusion/internal/libgen"
	"deepfusion/internal/target"
)

func deck(t *testing.T, n int) []*chem.Mol {
	t.Helper()
	mols := libgen.Draw(libgen.All(), n)
	if len(mols) < n {
		t.Fatalf("drew only %d of %d compounds", len(mols), n)
	}
	return mols
}

func TestSecondaryAssayKinds(t *testing.T) {
	for _, tc := range []struct {
		target *target.Pocket
		want   Kind
		conc   float64
	}{
		{target.Protease1, SDSPage, 100},
		{target.Protease2, SDSPage, 100},
		{target.Spike1, BLI, 10},
		{target.Spike2, BLI, 10},
	} {
		a := Secondary(tc.target)
		if a.Kind != tc.want || a.ConcentrationUM != tc.conc {
			t.Errorf("%s secondary = %s at %v uM, want %s at %v uM",
				tc.target.Name, a.Kind, a.ConcentrationUM, tc.want, tc.conc)
		}
	}
}

func TestSecondaryReadsIndependentNoiseStream(t *testing.T) {
	// Primary and secondary must disagree on at least some compounds:
	// that is the entire point of an orthogonal confirmation assay.
	mols := deck(t, 40)
	p := ForTarget(target.Protease1)
	s := Secondary(target.Protease1)
	differ := 0
	for _, m := range mols {
		if p.Inhibition(m) != s.Inhibition(m) {
			differ++
		}
	}
	if differ < len(mols)/2 {
		t.Fatalf("only %d/%d compounds read differently in the secondary assay", differ, len(mols))
	}
}

func TestSecondaryCorrelatesWithPrimary(t *testing.T) {
	// Both assays read the same underlying binding truth, so strong
	// primary actives should confirm far above the base rate.
	mols := deck(t, 120)
	p := ForTarget(target.Spike1)
	s := Secondary(target.Spike1)
	var strongConfirmed, strongTotal, weakActive, weakTotal int
	for _, m := range mols {
		if p.Inhibition(m) >= 50 {
			strongTotal++
			if s.Inhibition(m) >= 33 {
				strongConfirmed++
			}
		} else if p.Inhibition(m) <= 1 {
			weakTotal++
			if s.Inhibition(m) >= 33 {
				weakActive++
			}
		}
	}
	if strongTotal == 0 || weakTotal == 0 {
		t.Skip("deck produced no strong or no weak compounds")
	}
	strongRate := float64(strongConfirmed) / float64(strongTotal)
	weakRate := float64(weakActive) / float64(weakTotal)
	if strongRate <= weakRate {
		t.Fatalf("confirmation rate for strong binders (%.2f) should exceed false-positive rate for non-binders (%.2f)",
			strongRate, weakRate)
	}
}

func TestScreenTwoStageProtocol(t *testing.T) {
	mols := deck(t, 80)
	c := Screen(target.Protease1, mols, 33)
	// Confirmed is a subset of primary hits, indices valid and sorted.
	hits := map[int]bool{}
	prev := -1
	for _, i := range c.PrimaryHits {
		if i <= prev || i < 0 || i >= len(mols) {
			t.Fatalf("primary hit indices invalid: %v", c.PrimaryHits)
		}
		prev = i
		hits[i] = true
	}
	for _, i := range c.Confirmed {
		if !hits[i] {
			t.Fatalf("confirmed compound %d was not a primary hit", i)
		}
	}
	if r := c.ConfirmationRate(); r < 0 || r > 1 {
		t.Fatalf("confirmation rate %v out of range", r)
	}
}

func TestScreenEmptyAndNoHits(t *testing.T) {
	if c := Screen(target.Spike2, nil, 33); len(c.PrimaryHits) != 0 || c.ConfirmationRate() != 0 {
		t.Fatalf("empty deck should produce no hits: %+v", c)
	}
	// An impossible threshold yields no primary hits.
	mols := deck(t, 10)
	if c := Screen(target.Spike2, mols, 101); len(c.PrimaryHits) != 0 {
		t.Fatalf("threshold above 100%% should yield no hits, got %v", c.PrimaryHits)
	}
}

func TestScreenDeterministicProperty(t *testing.T) {
	mols := deck(t, 30)
	check := func(thPick uint) bool {
		th := float64(thPick % 80)
		a := Screen(target.Protease2, mols, th)
		b := Screen(target.Protease2, mols, th)
		if len(a.PrimaryHits) != len(b.PrimaryHits) || len(a.Confirmed) != len(b.Confirmed) {
			return false
		}
		for i := range a.PrimaryHits {
			if a.PrimaryHits[i] != b.PrimaryHits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestScreenMonotoneInThresholdProperty(t *testing.T) {
	// Raising the threshold can only shrink the primary-hit set.
	mols := deck(t, 60)
	check := func(aPick, bPick uint) bool {
		lo, hi := float64(aPick%60), float64(bPick%60)
		if lo > hi {
			lo, hi = hi, lo
		}
		cLo := Screen(target.Spike1, mols, lo)
		cHi := Screen(target.Spike1, mols, hi)
		return len(cHi.PrimaryHits) <= len(cLo.PrimaryHits)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestForTargetAndSecondaryDefaults(t *testing.T) {
	// Unknown (synthetic) pockets fall back to the protease protocol in
	// both the primary and confirmation assays.
	other := target.Synthetic("elsewhere", 99)
	if a := ForTarget(other); a.Kind != FRET || a.ConcentrationUM != 100 {
		t.Fatalf("default primary = %s at %v uM, want FRET at 100 uM", a.Kind, a.ConcentrationUM)
	}
	if a := Secondary(other); a.Kind != SDSPage || a.ConcentrationUM != 100 {
		t.Fatalf("default secondary = %s at %v uM, want SDS-PAGE at 100 uM", a.Kind, a.ConcentrationUM)
	}
}

func TestMolIDFallbacks(t *testing.T) {
	// Named molecules key by name; unnamed by source SMILES; otherwise
	// by the canonical writer, so every molecule gets a stable stream.
	named := &chem.Mol{Name: "x", SMILES: "CC"}
	if molID(named) != "x" {
		t.Fatalf("named molID = %q", molID(named))
	}
	bySmiles := &chem.Mol{SMILES: "CC"}
	if molID(bySmiles) != "CC" {
		t.Fatalf("SMILES molID = %q", molID(bySmiles))
	}
	raw, err := chem.ParseSMILES("CCO")
	if err != nil {
		t.Fatal(err)
	}
	raw.Name, raw.SMILES = "", ""
	if molID(raw) == "" {
		t.Fatal("writer-fallback molID must be non-empty")
	}
	if molID(raw) != molID(raw) {
		t.Fatal("writer-fallback molID must be stable")
	}
}
