// Package target defines the binding sites of the screen — the four
// SARS-CoV-2 pockets of the paper (two Mpro protease sites, two spike
// sites) plus generated synthetic pockets for corpus diversity — and
// the planted binding-affinity oracle that every physics surrogate and
// learned model in this reproduction ultimately reads.
//
// A Pocket is a rigid cloud of typed pseudo-atoms centered on the
// origin (the pocket frame every pose lives in). TrueAffinity is the
// planted ground truth: a smooth, pose-aware function of the
// ligand/pocket chemical complementarity. BiasedAffinity reads the
// same surface through a scoring method's systematic error profile
// (MethodBias) — strong or weak per interaction class, plus a
// deterministic per-compound noise stream — which is how Vina,
// MM/GBSA and the learned models occupy different rungs of the
// correlation ladder the paper measures without sharing any code.
package target

import (
	"math"
	"math/rand"

	"deepfusion/internal/chem"
)

// PocketAtom is one rigid protein pseudo-atom: a position in the
// pocket frame plus the coarse chemistry the featurizers and physics
// scores read.
type PocketAtom struct {
	Pos         chem.Vec3
	Hydrophobic bool
	Donor       bool
	Acceptor    bool
	Charged     float64 // signed partial charge, e units
}

// Pocket is a binding site: typed pseudo-atoms on a shell around the
// origin and the planted affinity surface the oracle evaluates.
type Pocket struct {
	Name   string
	Atoms  []PocketAtom
	Radius float64 // site radius in Angstroms

	// Planted affinity surface: per-pocket preference weights for the
	// interaction classes (see affinity).
	base                                           float64
	wContact, wHydro, wHBond, wArom, wRot, wCharge float64
}

// MethodBias is a scoring method's systematic error profile: one
// multiplier per interaction class of the planted surface, plus the
// standard deviation of a deterministic per-compound noise stream
// keyed by Tag. A multiplier of 1 everywhere with zero noise recovers
// the ground truth.
type MethodBias struct {
	Tag                                      string
	Contact, Hydro, HBond, Arom, Rot, Charge float64
	Noise                                    float64 // pK units
}

// unbiased is the identity profile used by TrueAffinity.
var unbiased = MethodBias{Contact: 1, Hydro: 1, HBond: 1, Arom: 1, Rot: 1, Charge: 1}

// PlaceLigand translates mol so its centroid sits at the pocket
// center (the origin), the canonical crystal-like pose every stage of
// the pipeline starts from. The molecule is modified in place and
// returned for convenience.
func (p *Pocket) PlaceLigand(m *chem.Mol) *chem.Mol {
	m.Translate(m.Centroid().Scale(-1))
	return m
}

// TrueAffinity returns the planted binding affinity (pK units, higher
// is stronger) of mol posed in the pocket frame. It is deterministic
// and smooth in the pose, so docking searches can hill-climb it.
func (p *Pocket) TrueAffinity(m *chem.Mol) float64 {
	return p.affinity(m, unbiased)
}

// BiasedAffinity returns the planted affinity as seen by a scoring
// method with the given systematic error profile.
func (p *Pocket) BiasedAffinity(m *chem.Mol, b MethodBias) float64 {
	return p.affinity(m, b)
}

// surface accumulates the pose-weighted interaction-class totals of
// mol in the pocket. Each ligand atom contributes with a logistic
// occupancy weight of its distance from the pocket center, so the
// surface decays smoothly as a pose drifts out of the site.
func (p *Pocket) surface(m *chem.Mol) (contact, hydro, hbond, arom, charge float64) {
	for _, a := range m.Atoms {
		e, ok := chem.Elements[a.Symbol]
		if !ok {
			continue
		}
		d := a.Pos.Norm()
		w := 1 / (1 + math.Exp((d-p.Radius)/2.0))
		contact += w
		if e.Hydrophobic {
			hydro += w
		}
		if a.Aromatic {
			arom += w
		}
		if e.Donor || e.Acceptor {
			hbond += w
		}
		charge += w * math.Abs(float64(a.Charge))
	}
	return
}

// sat is a saturating transform: linear for small x, asymptote at
// scale, so the oracle rewards complementarity rather than raw size.
func sat(x, scale float64) float64 { return x / (1 + x/scale) }

func (p *Pocket) affinity(m *chem.Mol, b MethodBias) float64 {
	contact, hydro, hbond, arom, charge := p.surface(m)
	rot := float64(m.RotatableBonds())
	pk := p.base +
		b.Contact*p.wContact*sat(contact, 45) +
		b.Hydro*p.wHydro*sat(hydro, 30) +
		b.HBond*p.wHBond*sat(hbond, 10) +
		b.Arom*p.wArom*sat(arom, 12) +
		b.Charge*p.wCharge*sat(charge, 3) -
		b.Rot*p.wRot*sat(rot, 8)
	if b.Noise > 0 {
		pk += b.Noise * hashNormal(p.Name, b.Tag, molKey(m))
	}
	if pk < 2 {
		pk = 2
	}
	if pk > 12 {
		pk = 12
	}
	return pk
}

// molKey is the stable per-compound identity the noise streams hash.
func molKey(m *chem.Mol) string {
	if m.Name != "" {
		return m.Name
	}
	if m.SMILES != "" {
		return m.SMILES
	}
	return chem.WriteSMILES(m)
}

// hashBits is FNV-1a over name + "/" + tag + "\x00" + key, folded
// inline over the component strings: scoring paths draw noise once per
// pose, and hashing without assembling the joined string (or a hasher)
// keeps the warm path allocation-free. Bit-identical to hashing the
// concatenated string through hash/fnv.
func hashBits(name, tag, key string) uint64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= '/'
	h *= prime64
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= prime64
	}
	h *= prime64 // the \x00 separator: XOR with zero is identity
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// hashNormal is a deterministic standard-normal draw per (target,
// method, compound): twelve LCG uniforms summed (Irwin-Hall), as in
// the assay package.
func hashNormal(name, tag, key string) float64 {
	seed := hashBits(name, tag, key)
	s := 0.0
	for i := 0; i < 12; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		s += float64(seed>>11) / float64(1<<53)
	}
	return s - 6
}

// profile parameterizes pocket generation: shape, pseudo-atom
// chemistry frequencies, and the planted surface weights.
type profile struct {
	nAtoms                                         int
	radius                                         float64
	fracHydro, fracDonor, fracAcceptor, fracCharge float64
	base                                           float64
	wContact, wHydro, wHBond, wArom, wRot, wCharge float64
}

// newPocket builds a deterministic pocket from a seed and profile:
// pseudo-atoms scattered on a shell between 0.75 and 1.15 of the site
// radius with chemistry drawn at the profile frequencies.
func newPocket(name string, seed int64, pr profile) *Pocket {
	rng := rand.New(rand.NewSource(seed))
	p := &Pocket{
		Name:     name,
		Radius:   pr.radius,
		base:     pr.base,
		wContact: pr.wContact,
		wHydro:   pr.wHydro,
		wHBond:   pr.wHBond,
		wArom:    pr.wArom,
		wRot:     pr.wRot,
		wCharge:  pr.wCharge,
	}
	for i := 0; i < pr.nAtoms; i++ {
		dir := randUnit(rng)
		r := pr.radius * (0.75 + 0.40*rng.Float64())
		a := PocketAtom{Pos: dir.Scale(r)}
		a.Hydrophobic = rng.Float64() < pr.fracHydro
		if !a.Hydrophobic {
			a.Donor = rng.Float64() < pr.fracDonor
			a.Acceptor = rng.Float64() < pr.fracAcceptor
		}
		if rng.Float64() < pr.fracCharge {
			sign := 1.0
			if rng.Float64() < 0.5 {
				sign = -1
			}
			a.Charged = sign * (0.3 + 0.7*rng.Float64())
		}
		p.Atoms = append(p.Atoms, a)
	}
	return p
}

func randUnit(rng *rand.Rand) chem.Vec3 {
	for {
		v := chem.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		if n := v.Norm(); n > 1e-6 {
			return v.Scale(1 / n)
		}
	}
}

// The four screening targets of the paper (Section 3): two Mpro
// protease sites and two spike sites, with chemistry matching their
// published character — the catalytic protease site is polar and
// hydrogen-bond driven, the spike interface patches are shallower and
// more hydrophobic.
var (
	// Protease1 is the Mpro catalytic site.
	Protease1 = newPocket("protease1", 101, profile{
		nAtoms: 56, radius: 9.0,
		fracHydro: 0.35, fracDonor: 0.45, fracAcceptor: 0.50, fracCharge: 0.30,
		base: 1.1, wContact: 0.12, wHydro: 0.12, wHBond: 0.34, wArom: 0.14, wRot: 0.20, wCharge: 0.30,
	})
	// Protease2 is the Mpro dimer-interface site.
	Protease2 = newPocket("protease2", 102, profile{
		nAtoms: 48, radius: 8.2,
		fracHydro: 0.45, fracDonor: 0.35, fracAcceptor: 0.40, fracCharge: 0.22,
		base: 1.0, wContact: 0.11, wHydro: 0.15, wHBond: 0.26, wArom: 0.16, wRot: 0.24, wCharge: 0.22,
	})
	// Spike1 is the RBD/ACE2 interface patch.
	Spike1 = newPocket("spike1", 103, profile{
		nAtoms: 60, radius: 9.6,
		fracHydro: 0.60, fracDonor: 0.25, fracAcceptor: 0.30, fracCharge: 0.18,
		base: 1.2, wContact: 0.13, wHydro: 0.19, wHBond: 0.16, wArom: 0.20, wRot: 0.18, wCharge: 0.16,
	})
	// Spike2 is the NTD allosteric site.
	Spike2 = newPocket("spike2", 104, profile{
		nAtoms: 52, radius: 8.8,
		fracHydro: 0.55, fracDonor: 0.30, fracAcceptor: 0.30, fracCharge: 0.25,
		base: 1.1, wContact: 0.12, wHydro: 0.16, wHBond: 0.22, wArom: 0.18, wRot: 0.22, wCharge: 0.24,
	})
)

// All returns the four screening targets in canonical order.
func All() []*Pocket {
	return []*Pocket{Protease1, Protease2, Spike1, Spike2}
}

// ByName returns the screening target with the given name, or nil.
func ByName(name string) *Pocket {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Synthetic generates a deterministic random pocket — the protein
// diversity of the PDBbind-style training corpus beyond the four
// screening sites.
func Synthetic(name string, seed int64) *Pocket {
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	pr := profile{
		nAtoms:       40 + rng.Intn(24),
		radius:       7.8 + 2.0*rng.Float64(),
		fracHydro:    0.30 + 0.35*rng.Float64(),
		fracDonor:    0.20 + 0.30*rng.Float64(),
		fracAcceptor: 0.20 + 0.30*rng.Float64(),
		fracCharge:   0.15 + 0.20*rng.Float64(),
		base:         0.9 + 0.5*rng.Float64(),
		wContact:     0.10 + 0.05*rng.Float64(),
		wHydro:       0.11 + 0.08*rng.Float64(),
		wHBond:       0.18 + 0.16*rng.Float64(),
		wArom:        0.12 + 0.10*rng.Float64(),
		wRot:         0.16 + 0.10*rng.Float64(),
		wCharge:      0.14 + 0.16*rng.Float64(),
	}
	return newPocket(name, seed, pr)
}
