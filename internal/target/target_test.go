package target

import (
	"math"
	"testing"

	"deepfusion/internal/chem"
)

func testMol(t *testing.T, smiles string) *chem.Mol {
	t.Helper()
	m, err := chem.ParseSMILES(smiles)
	if err != nil {
		t.Fatal(err)
	}
	m.Name = smiles
	chem.Embed3D(m, 7)
	return m
}

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("targets = %d, want 4", len(all))
	}
	for _, p := range all {
		if ByName(p.Name) != p {
			t.Fatalf("ByName(%q) did not return the canonical pocket", p.Name)
		}
		if len(p.Atoms) == 0 || p.Radius <= 0 {
			t.Fatalf("%s has no geometry", p.Name)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name must return nil")
	}
}

func TestPlaceLigandCenters(t *testing.T) {
	m := testMol(t, "CC(=O)Oc1ccccc1C(=O)O")
	m.Translate(chem.Vec3{X: 40, Y: -13, Z: 7})
	out := Protease1.PlaceLigand(m)
	if out != m {
		t.Fatal("PlaceLigand must return its (mutated) argument")
	}
	if d := m.Centroid().Norm(); d > 1e-9 {
		t.Fatalf("centroid %v A from the pocket center", d)
	}
}

func TestTrueAffinityDeterministicAndBounded(t *testing.T) {
	m := Protease1.PlaceLigand(testMol(t, "c1ccccc1CCN"))
	a := Protease1.TrueAffinity(m)
	if a != Protease1.TrueAffinity(m) {
		t.Fatal("oracle not deterministic")
	}
	if a < 2 || a > 12 {
		t.Fatalf("pK %v outside [2, 12]", a)
	}
}

func TestAffinityDecaysOutOfPocket(t *testing.T) {
	m := Spike1.PlaceLigand(testMol(t, "CC(=O)Nc1ccc(O)cc1"))
	in := Spike1.TrueAffinity(m)
	m.Translate(chem.Vec3{X: 60})
	out := Spike1.TrueAffinity(m)
	if out >= in {
		t.Fatalf("affinity did not decay leaving the pocket: in %v, out %v", in, out)
	}
}

func TestBiasedAffinityNoiseIsPerCompoundAndPerMethod(t *testing.T) {
	m := Protease1.PlaceLigand(testMol(t, "NCCO"))
	bias := MethodBias{Tag: "m1", Contact: 1, Hydro: 1, HBond: 1, Arom: 1, Rot: 1, Charge: 1, Noise: 0.5}
	a := Protease1.BiasedAffinity(m, bias)
	if a != Protease1.BiasedAffinity(m, bias) {
		t.Fatal("biased read not deterministic")
	}
	clean := bias
	clean.Noise = 0
	if Protease1.BiasedAffinity(m, clean) != Protease1.TrueAffinity(m) {
		t.Fatal("identity bias with zero noise must recover the truth")
	}
	other := bias
	other.Tag = "m2"
	if Protease1.BiasedAffinity(m, other) == a {
		t.Fatal("different method tags must read independent noise streams")
	}
}

func TestSyntheticDeterministicAndDistinct(t *testing.T) {
	a := Synthetic("synth00", 5)
	b := Synthetic("synth00", 5)
	if len(a.Atoms) != len(b.Atoms) || a.Radius != b.Radius {
		t.Fatal("Synthetic not deterministic")
	}
	for i := range a.Atoms {
		if a.Atoms[i] != b.Atoms[i] {
			t.Fatal("Synthetic atoms not deterministic")
		}
	}
	c := Synthetic("synth01", 6)
	if len(a.Atoms) == len(c.Atoms) && a.Radius == c.Radius {
		// Radii are drawn from a continuous range; equality would mean
		// the seed is being ignored.
		t.Fatal("different seeds produced an identical pocket")
	}
}

func TestPocketAtomsInsideVoxelExtent(t *testing.T) {
	// The default 8^3 x 3 A grid spans ±12 A; pocket pseudo-atoms must
	// land inside it so the protein channels are populated.
	for _, p := range All() {
		inside := 0
		for _, a := range p.Atoms {
			if math.Abs(a.Pos.X) < 12 && math.Abs(a.Pos.Y) < 12 && math.Abs(a.Pos.Z) < 12 {
				inside++
			}
		}
		if inside < len(p.Atoms)/2 {
			t.Fatalf("%s: only %d/%d pseudo-atoms inside the default grid", p.Name, inside, len(p.Atoms))
		}
	}
}
