// Confirmation: the paper's two-stage experimental protocol (Section
// 5.1). Every compound in the deck goes through the primary screen
// (FRET for the Mpro sites, pseudo-typed virus for spike); primary
// hits are re-tested with the orthogonal confirmation assay (SDS-PAGE
// protein cleavage, biolayer interferometry) before being declared
// actives.
//
//	go run ./examples/confirmation
package main

import (
	"fmt"
	"log"

	"deepfusion"
	"deepfusion/internal/assay"
	"deepfusion/internal/libgen"
)

func main() {
	log.SetFlags(0)

	const deckSize = 200
	fmt.Printf("drawing %d unique compounds from the four libraries...\n\n", deckSize)
	deck := libgen.Draw(libgen.All(), deckSize)

	const threshold = 33.0 // % inhibition separating actives (paper Section 5.3)
	fmt.Printf("%-10s  %-22s %-22s  %7s  %9s  %s\n",
		"target", "primary assay", "confirmation assay", "hits", "confirmed", "rate")
	for _, tgt := range deepfusion.Targets() {
		primary := assay.ForTarget(tgt)
		secondary := assay.Secondary(tgt)
		c := assay.Screen(tgt, deck, threshold)
		fmt.Printf("%-10s  %-22s %-22s  %3d/%-3d  %9d  %.2f\n",
			tgt.Name,
			fmt.Sprintf("%s @ %.0f uM", primary.Kind, primary.ConcentrationUM),
			fmt.Sprintf("%s @ %.0f uM", secondary.Kind, secondary.ConcentrationUM),
			len(c.PrimaryHits), deckSize, len(c.Confirmed), c.ConfirmationRate())
	}

	fmt.Println("\nconfirmed actives on protease1:")
	c := assay.Screen(deepfusion.TargetByName("protease1"), deck, threshold)
	p := assay.ForTarget(deepfusion.TargetByName("protease1"))
	s := assay.Secondary(deepfusion.TargetByName("protease1"))
	for _, i := range c.Confirmed {
		m := deck[i]
		fmt.Printf("  %-28s primary %5.1f%%  confirmation %5.1f%%\n",
			m.Name, p.Inhibition(m), s.Inhibition(m))
	}
}
