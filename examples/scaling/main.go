// scaling reproduces the HPC-side experiments on the Lassen cluster
// simulator: the anatomy of a single 2M-pose Fusion job, the strong-
// scaling study of Figure 4, the 125-job peak of Table 7, and a fault-
// tolerance campaign with failure injection and resubmission.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"math/rand"

	"deepfusion/internal/cluster"
	"deepfusion/internal/experiments"
)

func main() {
	m := cluster.Lassen()
	fmt.Printf("simulated system: %s — %d nodes x %d GPUs, %d-core Power9, %dGB/node\n\n",
		m.Name, m.Nodes, m.GPUsPerNode, m.CPUCoresPerNode, m.MemoryGBPerNode)

	// Single-job anatomy.
	rng := rand.New(rand.NewSource(1))
	job := cluster.SimulateFusionJob(cluster.DefaultFusionJob(), rng)
	fmt.Printf("single 4-node job (2M poses, batch 56): startup %.0f min, eval %.0f min, output %.1f min -> %.0f poses/s\n\n",
		job.Startup.Minutes(), job.Eval.Minutes(), job.Output.Minutes(), job.PosesPerSecond())

	// Figure 4 strong scaling.
	fmt.Println(experiments.Figure4().Text)

	// Table 7 throughput.
	fmt.Println(experiments.Table7().Text)

	// Fault-tolerant campaign: 30 eight-node jobs (20% failure rate).
	spec := cluster.DefaultFusionJob()
	spec.Nodes = 8
	res, err := cluster.SimulateCampaign(30, 500, spec, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fault-tolerance campaign: 30 x 8-node jobs, %d resubmissions, all %d poses scored in %.1f h\n",
		res.Resubmissions, res.PosesScored, res.Makespan.Hours())
	fmt.Printf("(the paper chose 4-node jobs: the 8-node failure rate of %.0f%% wasted too much work)\n\n",
		100*cluster.FailureRate(8))

	// Gantt view of a small queued campaign (8 jobs on a 16-node
	// allocation: two waves of four).
	_, trace, err := cluster.TracedCampaign(8, 16, cluster.DefaultFusionJob(), 11)
	if err != nil {
		panic(err)
	}
	fmt.Println("queued campaign (8 x 4-node jobs on 16 nodes):")
	fmt.Print(cluster.RenderGantt(trace, 64))
}
