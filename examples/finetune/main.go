// finetune demonstrates the paper's future-work direction: adapting
// the general-purpose Coherent Fusion model to a single binding site.
// It trains the baseline on the multi-target PDBbind corpus, measures
// its error on protease1 complexes, fine-tunes on protease1-only
// complexes and measures again.
//
//	go run ./examples/finetune
package main

import (
	"fmt"
	"log"

	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/metrics"
	"deepfusion/internal/pdbbind"
)

func main() {
	log.SetFlags(0)
	ds := pdbbind.Generate(pdbbind.Options{
		NGeneral: 200, NRefined: 100, NCore: 40, ValFraction: 0.12, NumPockets: 8, Seed: 2025,
	})
	vo := featurize.DefaultVoxelOptions()
	gr := featurize.DefaultGraphOptions()
	train := fusion.FeaturizeDataset(ds.Train, vo, gr)
	val := fusion.FeaturizeDataset(ds.Val, vo, gr)
	core := fusion.FeaturizeDataset(ds.Core, vo, gr)

	fmt.Println("training the baseline Coherent Fusion model...")
	cnnCfg := fusion.DefaultCNN3DConfig()
	cnnCfg.Epochs = 3
	cnn, _ := fusion.TrainCNN3D(cnnCfg, train, val, 1)
	sg, _ := fusion.TrainSGCNN(fusion.DefaultSGCNNConfig(), train, val, 2)
	cohCfg := fusion.DefaultCoherentConfig()
	cohCfg.Epochs = 4
	base := fusion.NewFusion(cohCfg, cnn, sg, 3)
	fusion.TrainFusion(base, train, val, 4)

	// Split out the protease1-specific complexes.
	filter := func(ss []*fusion.Sample) []*fusion.Sample {
		var out []*fusion.Sample
		for _, s := range ss {
			if s.Pocket.Name == "protease1" {
				out = append(out, s)
			}
		}
		return out
	}
	tgtTrain, tgtVal, tgtCore := filter(train), filter(val), filter(core)
	if len(tgtCore) == 0 {
		tgtCore = tgtVal
	}
	fmt.Printf("protease1 subset: %d train / %d val / %d core complexes\n",
		len(tgtTrain), len(tgtVal), len(tgtCore))

	evalOn := func(f *fusion.Fusion, ss []*fusion.Sample) (rmse, pearson float64) {
		preds := f.PredictAll(ss)
		return metrics.RMSE(preds, fusion.Labels(ss)), metrics.Pearson(preds, fusion.Labels(ss))
	}
	r0, p0 := evalOn(base, tgtCore)
	fmt.Printf("baseline on protease1 core:   RMSE %.3f  Pearson %.3f\n", r0, p0)

	o := fusion.DefaultFineTuneOptions()
	o.Epochs = 5
	o.LearningRate = 2e-4
	specialized, _ := fusion.FineTune(base, tgtTrain, tgtVal, o, 5)
	r1, p1 := evalOn(specialized, tgtCore)
	fmt.Printf("fine-tuned on protease1 core: RMSE %.3f  Pearson %.3f\n", r1, p1)
	fmt.Println("\n(the baseline model is unchanged; FineTune adapts a clone)")
}
