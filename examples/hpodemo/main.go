// hpodemo shows the PB2 (Population-Based Bandits) optimizer on a
// transparent synthetic objective, then on a real SG-CNN population:
// under-performing trials clone a winner (exploit) and move through
// the continuous hyper-parameter space via the time-varying GP bandit
// (explore), exactly as the paper's distributed optimization did on
// Lassen.
//
//	go run ./examples/hpodemo
package main

import (
	"fmt"
	"math"

	"deepfusion/internal/experiments"
	"deepfusion/internal/hpo"
)

func main() {
	// Part 1: synthetic objective — loss is minimized at lr = 1e-2.
	space := &hpo.Space{Params: []hpo.Param{
		{Name: "lr", Kind: hpo.LogUniform, Lo: 1e-5, Hi: 1e-1},
		{Name: "width", Kind: hpo.Choice, Options: []float64{8, 16, 32}},
	}}
	obj := func(cfg hpo.Config, prev hpo.State, seed int64) (hpo.State, float64) {
		progress := 0.0
		if prev != nil {
			progress = prev.(float64)
		}
		progress++
		miss := math.Abs(math.Log10(cfg.Num["lr"]) + 2) // 0 at lr = 1e-2
		return progress, miss/progress + 0.3*miss
	}
	res := hpo.Run(space, obj, hpo.Options{
		Population: 8, QuantileFraction: 0.5, Rounds: 6, UCBBeta: 1, Seed: 11,
	})
	fmt.Printf("synthetic objective: best lr %.4g (optimum 1e-2), loss %.3f\n",
		res.Best.Config.Num["lr"], res.Best.Loss)
	fmt.Printf("population history: %d evaluations across %d trials\n\n",
		len(res.History), len(res.Population))

	// Part 2: a real SG-CNN population (paper Table 2).
	fmt.Println("running a PB2 population on the SG-CNN (this trains real models)...")
	r := experiments.Table2SGCNN(experiments.Smoke)
	fmt.Println(r.Text)
}
