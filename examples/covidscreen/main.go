// covidscreen runs a miniature version of the paper's SARS-CoV-2
// campaign: draw compounds from all four libraries, screen them
// against the four binding sites with the full funnel (prepare ->
// dock -> distributed Fusion scoring -> cost-function selection), and
// report the top candidates per target.
//
//	go run ./examples/covidscreen -n 16
package main

import (
	"flag"
	"fmt"
	"log"

	"deepfusion"
	"deepfusion/internal/pdbbind"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 16, "compounds to screen per target")
	top := flag.Int("top", 3, "candidates to report per target")
	flag.Parse()

	// Train repro-scale models once.
	opts := deepfusion.DefaultTrainOptions()
	opts.Dataset = pdbbind.Options{NGeneral: 120, NRefined: 60, NCore: 16, ValFraction: 0.1, NumPockets: 6, Seed: 9}
	opts.CNN.Epochs, opts.SG.Epochs, opts.Mid.Epochs, opts.Coherent.Epochs = 2, 4, 2, 2
	fmt.Println("training models...")
	models, err := deepfusion.Train(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Build the screening deck from the four libraries.
	var deck []*deepfusion.Mol
	libs := deepfusion.Libraries()
	for i := 0; len(deck) < *n; i++ {
		lib := libs[i%len(libs)]
		m, err := lib.Mol((i / len(libs)) % lib.Size)
		if err != nil {
			continue
		}
		deck = append(deck, m)
	}
	fmt.Printf("screening %d compounds against %d targets\n\n", len(deck), len(deepfusion.Targets()))

	for _, tgt := range deepfusion.Targets() {
		so := deepfusion.DefaultScreenOptions()
		so.MaxPoses = 3
		so.Select = *top
		scores, err := deepfusion.Screen(models, tgt, deck, so)
		if err != nil {
			log.Fatalf("%s: %v", tgt.Name, err)
		}
		fmt.Printf("%s (site radius %.1f A): top %d of %d\n", tgt.Name, tgt.Radius, len(scores), len(deck))
		for _, s := range scores {
			fmt.Printf("  %-26s predicted pK %.2f (vina %.2f kcal/mol, %d poses)\n",
				s.CompoundID, s.Fusion, s.Vina, s.NumPoses)
		}
		fmt.Println()
	}
}
