// MD refinement: run the full physics funnel on one compound — dock
// with the Vina-style Monte-Carlo search, rescore with MM/GBSA, then
// relax the top poses with the molecular-dynamics stage the paper
// notes is used "before finalizing candidates for physical
// experimentation" (Section 3.1).
//
//	go run ./examples/mdrefine
package main

import (
	"fmt"
	"log"

	"deepfusion"
	"deepfusion/internal/dock"
	"deepfusion/internal/md"
	"deepfusion/internal/mmgbsa"
)

func main() {
	log.SetFlags(0)

	// A remdesivir-like nucleoside scaffold against the main protease.
	raw, err := deepfusion.ParseSMILES("CCC(CC)COC(=O)C(C)NP(=O)(OC)Oc1ccccc1")
	if err != nil {
		log.Fatal(err)
	}
	raw.Name = "candidate-md"
	lig, err := deepfusion.PrepareLigand(raw, 7)
	if err != nil {
		log.Fatal(err)
	}
	mpro := deepfusion.TargetByName("protease1")

	// Stage 1 — docking (cheap, ~10 poses/s/node in the paper).
	poses := dock.Dock(mpro, lig, dock.DefaultSearchOptions())
	fmt.Printf("docked %s into %s: %d poses, best Vina score %.2f kcal/mol\n",
		lig.Name, mpro.Name, len(poses), poses[0].Score)

	// Stage 2 — MM/GBSA rescoring (expensive, 0.067 poses/s/node).
	fmt.Println("\nMM/GBSA rescoring of the top 3 poses:")
	for _, p := range poses[:3] {
		fmt.Printf("  pose %d: vina %.2f, mmgbsa %.2f kcal/mol\n",
			p.Rank, p.Score, mmgbsa.Rescore(mpro, p.Mol))
	}

	// Stage 3 — MD relaxation of the top poses (the most expensive
	// stage, applied to the fewest candidates).
	opts := md.DefaultOptions()
	refined := md.RefineDockPoses(mpro, poses[:3], opts)
	fmt.Println("\nafter MD minimize-anneal-quench refinement:")
	for _, p := range refined {
		fmt.Printf("  pose %d: vina %.2f, mmgbsa %.2f kcal/mol\n",
			p.Rank, p.Score, mmgbsa.Rescore(mpro, p.Mol))
	}

	// Detail view of the single best pose's trajectory energetics.
	sys := md.NewSystem(mpro, poses[0].Mol, opts.Seed)
	e0 := sys.PotentialEnergy()
	sys.Minimize(opts.MinimizeSteps, 0.05)
	eMin := sys.PotentialEnergy()
	sys.InitVelocities(opts.StartTempK)
	sys.Langevin(opts.TimestepFs, opts.StartTempK, opts.FrictionPsInv, opts.AnnealSteps)
	fmt.Printf("\ntop pose energetics: docked %.2f -> minimized %.2f kcal/mol; "+
		"anneal at %.0f K holds T=%.0f K\n", e0, eMin, opts.StartTempK, sys.Temperature())
}
