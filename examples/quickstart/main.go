// Quickstart: parse a drug SMILES, run ligand preparation, train the
// repro-scale models, and predict its binding affinity against the
// SARS-CoV-2 main protease with all three fusion strategies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"deepfusion"
	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/pdbbind"
)

func main() {
	log.SetFlags(0)

	// 1. A candidate molecule (tetracycline-like scaffold; tetracycline
	// was one of the paper's four confirmed Mpro inhibitors from ZINC).
	raw, err := deepfusion.ParseSMILES("CC(=O)Oc1ccccc1C(=O)O.[Na+]")
	if err != nil {
		log.Fatal(err)
	}
	raw.Name = "candidate-1"

	// 2. Ligand preparation: desalt, protonate at pH 7, embed 3D.
	lig, err := deepfusion.PrepareLigand(raw, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared %s: %d heavy atoms, net charge %+d\n",
		raw.Name, lig.NumAtoms(), lig.NetCharge())

	// 3. Train the models on a small synthetic PDBbind corpus (seconds).
	opts := deepfusion.DefaultTrainOptions()
	opts.Dataset = pdbbind.Options{NGeneral: 120, NRefined: 60, NCore: 16, ValFraction: 0.1, NumPockets: 6, Seed: 7}
	opts.CNN.Epochs, opts.SG.Epochs, opts.Mid.Epochs, opts.Coherent.Epochs = 2, 4, 2, 2
	fmt.Println("training 3D-CNN, SG-CNN and fusion models...")
	models, err := deepfusion.Train(opts)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Pose the ligand in the Mpro active site and predict.
	mpro := deepfusion.TargetByName("protease1")
	posed := lig.Clone()
	mpro.PlaceLigand(posed)
	sample := fusion.FeaturizeComplex(raw.Name, mpro, posed, 0,
		opts.CNN.Voxel, featurize.DefaultGraphOptions())

	fmt.Printf("\npredicted binding affinity (pK) against %s:\n", mpro.Name)
	fmt.Printf("  Late Fusion:     %.2f\n", models.Late.Predict(sample))
	fmt.Printf("  Mid-level Fusion:%.2f\n", models.Mid.Predict(sample))
	fmt.Printf("  Coherent Fusion: %.2f\n", models.Coherent.Predict(sample))
	fmt.Printf("  (planted truth:  %.2f)\n", mpro.TrueAffinity(posed))
}
