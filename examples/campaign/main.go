// campaign walks through the production screening layer end to end:
//
//  1. run a two-target campaign and kill it mid-flight (simulated
//     with a cancelled context, exactly what SIGINT does in
//     cmd/campaign),
//
//  2. resume it from the manifest — completed chunks are skipped,
//     in-flight chunks re-run — and finalize the selections,
//
//  3. run the same campaign uninterrupted and show the selections are
//     byte-identical,
//
//  4. project the campaign onto the paper's production system (2M-pose
//     four-node Fusion jobs, 500 Lassen nodes, ~125 jobs in flight)
//     with the discrete-event cluster simulator.
//
//     go run ./examples/campaign
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"deepfusion/internal/campaign"
	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/screen"
)

// demoModel is an untrained but deterministic Coherent Fusion model:
// the walkthrough is about campaign mechanics, not model quality, so
// we skip training time. Seeded construction means a "resuming
// process" rebuilds bit-identical weights — the same property
// cmd/campaign gets from deterministic training.
func demoModel() *fusion.Fusion {
	cnnCfg := fusion.DefaultCNN3DConfig()
	cnnCfg.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cnnCfg.ConvFilters1 = 4
	cnnCfg.ConvFilters2 = 6
	cnnCfg.DenseNodes = 8
	sg := fusion.DefaultSGCNNConfig()
	sg.CovGatherWidth = 6
	sg.NonCovGatherWidth = 8
	return fusion.NewFusion(fusion.DefaultCoherentConfig(),
		fusion.NewCNN3D(cnnCfg, 1), fusion.NewSGCNN(sg, 2), 3)
}

// demoScorers is the campaign's scorer set: the manifest records the
// names and a resume must present the same set. A single Coherent
// model keeps the walkthrough fast; see examples/consensus for a
// multi-scorer ensemble.
func demoScorers() []screen.Scorer {
	return []screen.Scorer{demoModel()}
}

func demoConfig() campaign.Config {
	cfg := campaign.DefaultConfig()
	cfg.Targets = []string{"protease1", "spike1"}
	cfg.Compounds = 12
	cfg.ChunkSize = 3
	cfg.MaxPoses = 2
	cfg.Workers = 2
	cfg.TopN = 5
	cfg.Job = screen.DefaultJobOptions()
	cfg.Job.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	// The paper's observed four-node failure rate; failed chunks are
	// retried per-chunk by the orchestrator.
	cfg.Job.FailureProb = 0.03
	cfg.Seed = 17
	return cfg
}

func selections(dir string) string {
	m, err := campaign.ReadSelections(dir)
	if err != nil {
		log.Fatal(err)
	}
	b, _ := json.MarshalIndent(m, "", "  ")
	return string(b)
}

func main() {
	log.SetFlags(0)
	root, err := os.MkdirTemp("", "campaign-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// --- 1. Start a campaign and kill it mid-flight. -----------------
	dir := filepath.Join(root, "covid")
	fmt.Println("== run: two targets, 12 compounds, 8 work units ==")
	c, err := campaign.New(dir, demoConfig(), demoScorers())
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	killAfter := 3
	var mu sync.Mutex
	done := 0
	c.OnUnitDone = func(u campaign.UnitRecord) {
		mu.Lock()
		defer mu.Unlock()
		done++
		fmt.Printf("  unit %-16s done (%d poses)\n", u.ID, u.Poses)
		if done >= killAfter {
			once.Do(func() {
				fmt.Println("  *** kill -9 (simulated): cancelling mid-campaign ***")
				cancel()
			})
		}
	}
	if _, err := c.Run(ctx); !errors.Is(err, campaign.ErrInterrupted) {
		log.Fatalf("expected an interrupted campaign, got %v", err)
	}
	st, err := campaign.ReadStatus(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("killed at %d/%d units done; manifest is the resume point\n\n", st.Done, st.Total)

	// --- 2. Resume from the manifest. --------------------------------
	fmt.Println("== resume: completed chunks skipped, the rest re-run ==")
	cr, err := campaign.Load(dir, demoScorers())
	if err != nil {
		log.Fatal(err)
	}
	cr.OnUnitStart = func(u campaign.UnitRecord) {
		fmt.Printf("  re-running unit %s\n", u.ID)
	}
	res, err := cr.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range res.PerTarget {
		fmt.Printf("  %s: %d selected, %d primary hits, %d confirmed\n",
			tr.Target, len(tr.Selections), tr.PrimaryHits, tr.Confirmed)
	}
	fmt.Println()

	// --- 3. Uninterrupted control run: identical selections. ---------
	fmt.Println("== control: the same campaign, uninterrupted ==")
	dir2 := filepath.Join(root, "covid-control")
	c2, err := campaign.New(dir2, demoConfig(), demoScorers())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c2.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	if selections(dir) == selections(dir2) {
		fmt.Println("  resumed and uninterrupted selections are byte-identical")
	} else {
		fmt.Println("  WARNING: selections diverged (this is a bug)")
	}
	fmt.Println()

	// --- 4. Project to paper scale on the cluster simulator. ---------
	fmt.Println("== paper scale: 4 targets x 6.25M compounds on 500 Lassen nodes ==")
	ps := campaign.DefaultPaperScale()
	sim, err := campaign.SimulateAtPaperScale(campaign.DefaultConfig(), ps, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  jobs run:       %d (%d resubmitted after failures)\n", sim.Jobs, sim.Resubmissions)
	fmt.Printf("  peak in flight: %d jobs (paper: ~125)\n", sim.PeakJobs)
	fmt.Printf("  makespan:       %v\n", sim.Makespan)
	fmt.Printf("  queue wait:     mean %v, max %v\n", sim.MeanQueueWait, sim.MaxQueueWait)
	fmt.Printf("  throughput:     %.0f poses/s aggregate\n", sim.PosesPerSecond())
	for _, t := range sim.PerTarget {
		fmt.Printf("    %-12s %3d jobs, %4.1fM poses, drained at %v\n",
			t.Target, t.Jobs, float64(t.PosesScored)/1e6, t.Finish)
	}
}
