// consensus demonstrates the one-scoring-contract redesign: the same
// distributed engine screening an ensemble of heterogeneous scorers —
// Coherent Fusion, the Vina docking surrogate and the MM/GBSA
// surrogate — in a single featurize-once pass, then a Consensus
// scorer folding the three methods into one ranking. This is the
// paper's method comparison (deep models vs physics scoring feeding
// one selection cost function) run as a single pipeline.
//
//	go run ./examples/consensus
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"deepfusion"
	"deepfusion/internal/pdbbind"
)

func main() {
	log.SetFlags(0)

	// Train repro-scale models (seconds).
	opts := deepfusion.DefaultTrainOptions()
	opts.Dataset = pdbbind.Options{NGeneral: 120, NRefined: 60, NCore: 16, ValFraction: 0.1, NumPockets: 6, Seed: 13}
	opts.CNN.Epochs, opts.SG.Epochs, opts.Mid.Epochs, opts.Coherent.Epochs = 2, 4, 2, 2
	fmt.Println("training 3D-CNN, SG-CNN and fusion models...")
	models, err := deepfusion.Train(opts)
	if err != nil {
		log.Fatal(err)
	}

	// A small deck from the first library.
	var deck []*deepfusion.Mol
	lib := deepfusion.Libraries()[0]
	for i := 0; len(deck) < 8; i++ {
		m, err := lib.Mol(i)
		if err != nil {
			continue
		}
		deck = append(deck, m)
	}
	tgt := deepfusion.TargetByName("protease1")

	// --- 1. Ensemble screening: featurize once, score three ways. ----
	fmt.Printf("\n== ensemble: 3 scorers, one featurization pass, %s ==\n", tgt.Name)
	res, err := deepfusion.NewPipeline(models).
		WithScorers(models.Coherent, deepfusion.VinaScorer(), deepfusion.MMGBSAScorer()).
		WithDocking(3, 21).
		Run(context.Background(), tgt, deck)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("docked %d poses from %d compounds (%d rejected), %d job attempt(s)\n",
		res.Docked, res.Compounds, res.Rejected, res.Attempts)
	for _, p := range res.Problems {
		fmt.Printf("  rejected %s\n", p)
	}
	fmt.Printf("\nper-scorer pose columns (first 5 of %d):\n", len(res.Predictions))
	fmt.Printf("%-24s %4s  %12s %12s %12s\n", "compound", "pose", "coherent pK", "vina kcal", "mmgbsa kcal")
	shown := append([]deepfusion.Prediction(nil), res.Predictions...)
	sort.Slice(shown, func(a, b int) bool {
		if shown[a].CompoundID != shown[b].CompoundID {
			return shown[a].CompoundID < shown[b].CompoundID
		}
		return shown[a].PoseRank < shown[b].PoseRank
	})
	for _, pr := range shown[:min(5, len(shown))] {
		fmt.Printf("%-24s %4d  %12.2f %12.2f %12.2f\n",
			pr.CompoundID, pr.PoseRank, pr.Scores["coherent"], pr.Scores["vina"], pr.Scores["mmgbsa"])
	}

	// --- 2. Consensus scoring: the ensemble as one Scorer. -----------
	consensus, err := deepfusion.NewConsensus(models.Coherent, deepfusion.VinaScorer(), deepfusion.MMGBSAScorer())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== consensus: %s as the primary scorer ==\n", consensus.Name())
	cres, err := deepfusion.NewPipeline(models).
		WithScorers(consensus).
		WithDocking(3, 21).
		WithSelection(deepfusion.CostWeights(), 4).
		Run(context.Background(), tgt, deck)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top %d of %d compounds by consensus-backed cost function:\n", len(cres.Selected), len(cres.Scores))
	for _, s := range cres.Selected {
		fmt.Printf("  %-24s consensus pK %5.2f  vina %7.2f  (%d poses)\n",
			s.CompoundID, s.Fusion, s.Vina, s.NumPoses)
	}
}
