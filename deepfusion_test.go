package deepfusion

import (
	"testing"

	"deepfusion/internal/pdbbind"
)

func smallTrainOptions() TrainOptions {
	o := DefaultTrainOptions()
	o.Dataset = pdbbind.Options{NGeneral: 60, NRefined: 30, NCore: 10, ValFraction: 0.12, NumPockets: 5, Seed: 77}
	o.CNN.Epochs = 1
	o.SG.Epochs = 2
	o.Mid.Epochs = 1
	o.Coherent.Epochs = 1
	return o
}

func TestPublicAPITargetsAndLibraries(t *testing.T) {
	if len(Targets()) != 4 {
		t.Fatal("four targets expected")
	}
	if len(Libraries()) != 4 {
		t.Fatal("four libraries expected")
	}
	if TargetByName("spike1") == nil || TargetByName("bogus") != nil {
		t.Fatal("TargetByName")
	}
}

func TestPublicAPIParseAndPrepare(t *testing.T) {
	m, err := ParseSMILES("CC(=O)Oc1ccccc1C(=O)O.[Na+]")
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := PrepareLigand(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if prepared.ContainsMetal() {
		t.Fatal("preparation kept the salt")
	}
}

func TestTrainAndScreenEndToEnd(t *testing.T) {
	models, err := Train(smallTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	if models.Coherent == nil || models.Late == nil || models.Mid == nil {
		t.Fatal("missing models")
	}
	// Screen a handful of library compounds against spike1.
	var mols []*Mol
	lib := Libraries()[0]
	for i := 0; len(mols) < 5; i++ {
		m, err := lib.Mol(i)
		if err != nil {
			continue
		}
		mols = append(mols, m)
	}
	o := DefaultScreenOptions()
	o.MaxPoses = 2
	o.Select = 3
	scores, err := Screen(models, TargetByName("spike1"), mols, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("selected %d compounds, want 3", len(scores))
	}
	// Ranking must be by combined cost, descending.
	w := CostWeights()
	for i := 1; i < len(scores); i++ {
		if w.Combined(scores[i]) > w.Combined(scores[i-1])+1e-9 {
			t.Fatal("selection not ranked")
		}
	}
	// Fusion predictions must be in pK space.
	for _, s := range scores {
		if s.Fusion < -5 || s.Fusion > 20 {
			t.Fatalf("fusion prediction %v implausible", s.Fusion)
		}
	}
}
