// Package deepfusion is a pure-Go reproduction of "High-Throughput
// Virtual Screening of Small Molecule Inhibitors for SARS-CoV-2
// Protein Targets with Deep Fusion Models" (Stevenson et al., SC 2021).
//
// It exposes the screening-facing surface of the system: the four
// SARS-CoV-2 binding sites, the four compound libraries, training of
// the 3D-CNN / SG-CNN / Fusion models on a synthetic PDBbind corpus,
// and the composable screening Pipeline over the one scoring contract
// (Scorer) shared by every model family, the physics surrogates and
// consensus — dock, score with a context-aware distributed ensemble
// job, select with the cost function, all reported in a rich Result. The internal packages hold the substrates
// (chemistry, docking, MM/GBSA, PB2 hyper-parameter optimization,
// cluster simulation); see DESIGN.md for the full inventory. The
// paper-vs-measured record of every table and figure is regenerated
// by cmd/benchreport (`make bench-report`).
package deepfusion

import (
	"context"
	"fmt"
	"log"

	"deepfusion/internal/chem"
	"deepfusion/internal/fusion"
	"deepfusion/internal/libgen"
	"deepfusion/internal/md"
	"deepfusion/internal/pdbbind"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

// Re-exported core types. The aliases keep example and downstream
// code on one import path.
type (
	// Mol is a small molecule (parsed from SMILES or generated).
	Mol = chem.Mol
	// Pocket is a protein binding site.
	Pocket = target.Pocket
	// Library is a compound collection.
	Library = libgen.Library
	// Models bundles the trained predictors of the paper.
	Models struct {
		CNN3D    *fusion.CNN3D
		SGCNN    *fusion.SGCNN
		Late     *fusion.LateFusion
		Mid      *fusion.Fusion
		Coherent *fusion.Fusion
	}
	// CompoundScore is a per-compound screening outcome.
	CompoundScore = screen.CompoundScore
	// Precision selects the screening engine's inference arithmetic:
	// PrecisionF64 (verified reference) or PrecisionF32 (fast path).
	Precision = screen.Precision
)

// Engine precisions for Pipeline.WithPrecision and JobOptions.
const (
	PrecisionF64 = screen.PrecisionF64
	PrecisionF32 = screen.PrecisionF32
)

// Targets returns the four SARS-CoV-2 binding sites (protease1,
// protease2, spike1, spike2).
func Targets() []*Pocket { return target.All() }

// TargetByName returns a screening target by name, or nil.
func TargetByName(name string) *Pocket { return target.ByName(name) }

// Libraries returns the four compound libraries of the screen (ZINC
// world-approved, ChEMBL, eMolecules, Enamine).
func Libraries() []*Library { return libgen.All() }

// ParseSMILES parses a SMILES string into a molecule.
func ParseSMILES(s string) (*Mol, error) { return chem.ParseSMILES(s) }

// PrepareLigand runs the MOE-style preparation pipeline: desalt,
// reject metal complexes, set pH 7 protonation, embed 3D coordinates.
func PrepareLigand(m *Mol, seed int64) (*Mol, error) { return chem.Prepare(m, seed) }

// TrainOptions sizes a training run.
type TrainOptions struct {
	Dataset  pdbbind.Options
	CNN      fusion.CNN3DConfig
	SG       fusion.SGCNNConfig
	Mid      fusion.FusionConfig
	Coherent fusion.FusionConfig
	Seed     int64
}

// DefaultTrainOptions returns the repro-scale configuration (the
// converged Table 2-5 hyper-parameters, scaled).
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		Dataset:  pdbbind.DefaultOptions(),
		CNN:      fusion.DefaultCNN3DConfig(),
		SG:       fusion.DefaultSGCNNConfig(),
		Mid:      fusion.DefaultMidFusionConfig(),
		Coherent: fusion.DefaultCoherentConfig(),
		Seed:     1,
	}
}

// Train generates the synthetic PDBbind corpus and trains all five
// models following the paper's procedure: individual heads first, then
// Mid-level Fusion on frozen heads, then Coherent Fusion fine-tuning
// pre-trained heads.
func Train(o TrainOptions) (*Models, error) {
	ds := pdbbind.Generate(o.Dataset)
	train := fusion.FeaturizeDataset(ds.Train, o.CNN.Voxel, o.SG.Graph)
	val := fusion.FeaturizeDataset(ds.Val, o.CNN.Voxel, o.SG.Graph)
	if len(train) == 0 || len(val) == 0 {
		return nil, fmt.Errorf("deepfusion: empty training corpus")
	}
	m := &Models{}
	m.CNN3D, _ = fusion.TrainCNN3D(o.CNN, train, val, o.Seed)
	m.SGCNN, _ = fusion.TrainSGCNN(o.SG, train, val, o.Seed+1)
	m.Late = &fusion.LateFusion{CNN: m.CNN3D, SG: m.SGCNN}
	m.Mid = fusion.NewFusion(o.Mid, m.CNN3D.Clone(), m.SGCNN.Clone(), o.Seed+2)
	fusion.TrainFusion(m.Mid, train, val, o.Seed+3)
	m.Coherent = fusion.NewFusion(o.Coherent, m.CNN3D.Clone(), m.SGCNN.Clone(), o.Seed+4)
	fusion.TrainFusion(m.Coherent, train, val, o.Seed+5)
	return m, nil
}

// RefineOptions configures the molecular-dynamics pose refinement
// stage (minimize, Langevin anneal, quench).
type RefineOptions = md.Options

// DefaultRefineOptions returns the screening-scale MD protocol.
func DefaultRefineOptions() RefineOptions { return md.DefaultOptions() }

// RefinePose relaxes a posed ligand in the pocket with the
// molecular-dynamics funnel stage the paper cites as the step before
// candidates are finalized for experiments. It returns the refined
// geometry and its force-field energy in kcal/mol.
func RefinePose(p *Pocket, mol *Mol, o RefineOptions) (*Mol, float64) {
	return md.RefinePose(p, mol, o)
}

// CostWeights returns the default hand-tailored compound-selection
// cost function (paper Section 5).
func CostWeights() screen.CostWeights { return screen.DefaultCostWeights() }

// ScreenOptions configures a Screen run.
type ScreenOptions struct {
	MaxPoses int // docked poses kept per compound (paper: 10)
	Job      screen.JobOptions
	Select   int // compounds to select for experiment (0 = all)
	Seed     int64
}

// DefaultScreenOptions mirrors the production funnel at repro scale.
func DefaultScreenOptions() ScreenOptions {
	return ScreenOptions{MaxPoses: 5, Job: screen.DefaultJobOptions(), Seed: 1}
}

// Screen runs the full funnel for one target: dock every compound,
// score all poses with the distributed Coherent Fusion job, and fold
// to per-compound scores ranked by the selection cost function.
//
// Deprecated: Screen is a thin wrapper over the composable Pipeline
// API — use NewPipeline(m).Run(ctx, p, compounds) for cancellation,
// scorer ensembles, and the full per-stage Result. The wrapper is
// pinned byte-identical to the Pipeline path; unlike the old
// implementation it no longer swallows docking rejections, logging
// them instead (the Pipeline surfaces them in Result.Problems).
func Screen(m *Models, p *Pocket, compounds []*Mol, o ScreenOptions) ([]CompoundScore, error) {
	res, err := NewPipeline(m).
		WithJob(o.Job).
		WithDocking(o.MaxPoses, o.Seed).
		WithSelection(screen.DefaultCostWeights(), o.Select).
		Run(context.Background(), p, compounds)
	if err != nil {
		return nil, err
	}
	if res.Rejected > 0 {
		log.Printf("deepfusion: Screen(%s): docking rejected %d of %d compounds: %v",
			p.Name, res.Rejected, res.Compounds, res.Problems)
	}
	return res.Selected, nil
}
