# Build, verification and benchmark entry points for the deepfusion
# reproduction. `make verify` is the tier-1 gate every change must
# keep green; `make bench` records the screening-throughput trajectory
# of the batched inference engine plus the paper's table/figure
# reports as JSON.

GO ?= go

.PHONY: all build verify test test-distributed test-dispatch-http test-serve test-integrity fuzz-h5lite vet vet-tags vulncheck bench bench-screen bench-consensus bench-featurize bench-kernels bench-precision bench-report bench-serve bench-integrity bench-smoke clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Vet again under the build tags CI exercises, so tag-gated files
# (benchmarks, integration probes) stay analyzable as they appear.
vet-tags:
	$(GO) vet -tags bench,integration ./...

# Known-vulnerability scan of the module and its (stdlib-only)
# dependency graph. Installs govulncheck on demand; requires network
# for the tool and its vulnerability database.
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

test:
	$(GO) test ./...

# Race-enabled pass over the distributed campaign runtime: lease
# state machine on the fake clock, racing-claim property test, the
# fault-injection chaos harness and the forked multi-process
# byte-identity test. The -timeout is a hang detector — the tests
# themselves run on virtual time.
test-distributed:
	$(GO) test -race -timeout 10m ./internal/campaign/... ./internal/cluster/

# Race-enabled pass over the multi-host HTTP dispatch layer: the
# shared Dispatcher conformance suite against both the filesystem and
# HTTP backends, the remote-worker byte-identity run, and the
# network-fault chaos harness (dropped requests, lost responses,
# injected 5xx, duplicated calls). All retry backoff runs on the fake
# clock — zero wall sleeps — so the -timeout is a hang detector.
test-dispatch-http:
	$(GO) test -race -timeout 10m ./internal/campaign/dispatchhttp/ ./internal/campaign/dispatchtest/

# Race-enabled pass over the screening service: the cross-request
# batcher on the fake clock (deadline vs batch-full vs drain flushes,
# exactly-once generations), admission control under saturation and
# the HTTP round trip. Deterministic — no wall-clock sleeps.
test-serve:
	$(GO) test -race -timeout 10m ./internal/serve/

# Race-enabled pass over the durability layer: h5lite v2 checksums
# (golden bytes, bit-flip and truncation sweeps, fuzz seed corpus),
# the disk-fault injection plans, the self-healing campaign loop
# (quarantine + re-queue under the repair budget), offline fsck, the
# shard-upload CRC refusal on the wire, and the screening service's
# restart healing. Deterministic on virtual time; -timeout is a hang
# detector.
test-integrity:
	$(GO) test -race -timeout 10m ./internal/h5lite/ ./internal/campaign/ ./internal/campaign/dispatch/ ./internal/campaign/dispatchhttp/ ./internal/serve/

# Short coverage-guided fuzz of the h5lite decoder on top of the
# checked-in seed corpus: no input may panic it, over-allocate, or
# decode corrupt bytes silently. CI runs this as a smoke step.
fuzz-h5lite:
	$(GO) test ./internal/h5lite/ -fuzz=FuzzRead -fuzztime=30s

# Tier-1 verification: build, vet, full test suite.
verify: build vet test

# Screening-engine throughput: batched inference vs the per-sample
# baseline (see internal/screen/bench_test.go).
bench-screen:
	$(GO) test ./internal/screen/ -run xxx -bench 'BenchmarkRunJob' -benchtime 2s | tee bench_screen.txt

# Ensemble-engine win: featurize-once/score-N consensus scoring vs N
# independent single-scorer runs over the same poses.
bench-consensus:
	$(GO) test ./internal/screen/ -run xxx -bench 'BenchmarkConsensus' -benchtime 2s | tee bench_consensus.txt

# Hot-path performance trajectory: f64-reference vs f32-fast-path
# pairs for the packed panel GEMM, the lowered Conv3D forward, the
# Coherent PredictBatch and the distributed RunJob
# (cmd/benchreport/kernels.go). BENCH_6.json is the committed
# trajectory artifact of the float32 inference PR (BENCH_5.json stays
# as the PR-5 featurization-cache record); CI uploads a fresh copy as
# a workflow artifact.
bench-kernels:
	$(GO) run ./cmd/benchreport -kernels -json > BENCH_6.json
	@echo "wrote BENCH_6.json"

# Precision microbenchmarks: the f64/f32 kernel pairs as plain `go
# test -bench` runs (packed GEMM, Coherent PredictBatch, RunJob) for
# quick iteration without regenerating the JSON artifact.
bench-precision:
	$(GO) test ./internal/tensor/ ./internal/fusion/ -run xxx -bench 'BenchmarkMatMulPacked|BenchmarkPredictBatchInto' -benchtime 1s | tee bench_precision.txt
	$(GO) test ./internal/screen/ -run xxx -bench 'BenchmarkRunJobBatched' -benchtime 2s | tee -a bench_precision.txt

# Screening-service trajectory: the warm engine behind the HTTP front
# door vs the solo RunJob baseline on the same scorer and job shape
# (cmd/benchreport/serve.go). Saturation throughput must hold >= 0.9x
# RunJob; low-load p99 must stay under the 25ms batching deadline.
# BENCH_8.json is the committed artifact; CI uploads a fresh copy.
bench-serve:
	$(GO) run ./cmd/benchreport -serve -json > BENCH_8.json
	@echo "wrote BENCH_8.json"

# Featurization microbenchmarks: Voxelize/BuildGraph per pose, cached
# vs uncached, repro + paper grids (internal/featurize/bench_test.go).
bench-featurize:
	$(GO) test ./internal/featurize/ -run xxx -bench . -benchtime 1s | tee bench_featurize.txt

# Paper tables and figures as machine-readable JSON (smoke budget;
# pass FULL=1 for the full budget).
bench-report:
	$(GO) run ./cmd/benchreport $(if $(FULL),-full) -json > bench_report.json
	@echo "wrote bench_report.json"

# Durability-layer cost trajectory: one prediction shard written and
# read through the real shard I/O path at h5lite v1 (no checksums) vs
# v2 (CRC32C sections + whole-file trailer, the default), each pair
# timed strictly interleaved so host noise cancels
# (cmd/benchreport/integrity.go). The WriteShard/ReadShard v2/v1
# ratios must stay <= 1.05. BENCH_10.json is the committed artifact;
# CI uploads a fresh copy.
bench-integrity:
	$(GO) run ./cmd/benchreport -integrity -json > BENCH_10.json
	@echo "wrote BENCH_10.json"

# One-iteration pass over every benchmark in the repo so benchmark
# code cannot rot; CI runs this on every push. BENCH_SCALE=smoke drops
# the paper-table benchmarks to the smoke budget — this is a
# compile-and-run rot check, not a measurement.
bench-smoke:
	BENCH_SCALE=smoke $(GO) test -run=NONE -bench=. -benchtime=1x ./...

bench: bench-screen bench-consensus bench-featurize bench-kernels bench-precision bench-serve bench-integrity bench-report

clean:
	rm -f bench_screen.txt bench_consensus.txt bench_featurize.txt bench_precision.txt bench_report.json
